//! §X discussion — serving INT4-quantized 22B models.
//!
//! 32 Codestral-22B-sized models on SLINFER: FP16 weights alone take 44 GB
//! (little sharing room on an 80 GB A100), while INT4 shrinks them to 11 GB.
//! The paper measures GPU usage dropping from 3.8 to 2.6 nodes.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::{HardwareKind, ModelSpec, Precision};
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(_quick: bool) -> usize {
    2 // same sweep at both tiers
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 16 } else { 32 };
    let res = Sweep::new()
        .points(vec![("FP16", Precision::Fp16), ("INT4", Precision::Int4)])
        .systems(vec![System::Slinfer(Default::default())])
        .seeds(vec![seed])
        .scenario(|cx| {
            let (_, precision) = cx.point;
            let base = ModelSpec::codestral_22b().with_precision(*precision);
            let models = zoo::replicas(&base, n_models as usize);
            Scenario::new(cx.system.cluster(4, 6, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(n_models, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!("§X — INT4 quantization, {n_models} 22B models"));
    let mut table = Table::new(&["precision", "GPU nodes used", "SLO rate", "cold starts"]);
    let mut dump = Vec::new();
    for (pi, (label, _)) in res.points.iter().enumerate() {
        let m = res.metrics(pi, 0, 0);
        let gpus = m.avg_nodes_used(HardwareKind::Gpu);
        table.row(&[
            label.to_string(),
            f(gpus, 1),
            f(m.slo_rate(), 3),
            m.cold_starts.to_string(),
        ]);
        dump.push((label.to_string(), gpus, m.slo_rate()));
    }
    r.table(&table);
    r.paper_note("§X: INT4 reduced GPU usage from 3.8 to 2.6 — 44 GB FP16 weights leave no");
    r.paper_note("sharing room on an 80 GB device, so quantization unlocks colocation");
    r.dump_json("disc_quantization", &dump);
}
