//! Figure 26 — mixed model-size deployment (§IX-E).
//!
//! Varies model-size popularity (3B:7B:13B:34B ratios) over 4 CPU + 6 GPU
//! nodes and reports GPUs used per system plus SLINFER's deployment density.
//! The paper: SLINFER always uses fewer GPUs; its advantage shrinks as
//! large models dominate, collapsing to exclusive allocation at 0:0:0:1.
//!
//! Substitution note: the paper serves CodeLlama-34B with TP=2 (two GPUs
//! per instance); here a 34B instance occupies one whole A100 exclusively
//! (67 GB weights leave no room for co-tenants), which preserves the
//! density trend while halving the absolute GPU count for 34B-heavy mixes.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::{HardwareKind, ModelSpec};
use workload::serverless::TraceSpec;

fn mix_models(ratio: &[usize; 4], n_models: u32) -> Vec<ModelSpec> {
    let mut parts: Vec<(ModelSpec, usize)> = Vec::new();
    for (spec, w) in [
        (ModelSpec::llama3_2_3b(), ratio[0]),
        (ModelSpec::llama2_7b(), ratio[1]),
        (ModelSpec::llama2_13b(), ratio[2]),
        (ModelSpec::codellama_34b(), ratio[3]),
    ] {
        if w > 0 {
            parts.push((spec, w));
        }
    }
    zoo::mixed(&parts, n_models as usize)
}

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(_quick: bool) -> usize {
    6 * 3 // same sweep at both tiers
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 16 } else { 32 };
    let ratios: Vec<(&str, [usize; 4])> = vec![
        ("4:1:1:1", [4, 1, 1, 1]),
        ("3:2:1:1", [3, 2, 1, 1]),
        ("2:2:2:1", [2, 2, 2, 1]),
        ("1:2:3:1", [1, 2, 3, 1]),
        ("1:1:4:1", [1, 1, 4, 1]),
        ("0:0:0:1", [0, 0, 0, 1]),
    ];
    let res = Sweep::new()
        .points(ratios)
        .systems(vec![
            System::SllmC,
            System::SllmCs,
            System::Slinfer(Default::default()),
        ])
        .seeds(vec![seed])
        .scenario(|cx| {
            let (_, ratio) = cx.point;
            let models = mix_models(ratio, n_models);
            Scenario::new(cx.system.cluster(4, 6, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(n_models, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!(
        "Fig 26 — mixed deployment, {n_models} models, 4 CPU + 6 GPU"
    ));
    let mut table = Table::new(&[
        "mix (3B:7B:13B:34B)",
        "sllm+c GPUs(SLO)",
        "sllm+c+s GPUs(SLO)",
        "SLINFER GPUs(SLO)",
        "SLINFER density",
    ]);
    let mut results = Vec::new();
    for (pi, (label, _)) in res.points.iter().enumerate() {
        let mut row = vec![label.to_string()];
        let mut gpus = Vec::new();
        let mut density = 0.0;
        for (si, system) in res.systems.iter().enumerate() {
            let m = res.metrics(pi, si, 0);
            let g = m.avg_nodes_used(HardwareKind::Gpu);
            gpus.push(g);
            row.push(format!("{} ({})", f(g, 1), f(m.slo_rate(), 2)));
            if matches!(system, System::Slinfer(_)) {
                // Approximate density: instance-lifetime per node-second.
                density = if m.cpu_node_busy_s + m.gpu_node_busy_s > 0.0 {
                    m.instance_lifetime_s / (m.cpu_node_busy_s + m.gpu_node_busy_s)
                } else {
                    0.0
                };
            }
        }
        row.push(f(density, 1));
        table.row(&row);
        results.push((label.to_string(), gpus, density));
    }
    r.table(&table);
    r.paper_note(
        "Fig 26: SLINFER consistently uses fewer GPUs; gains shrink as large models dominate;",
    );
    r.paper_note("at 0:0:0:1 SLINFER falls back to exclusive allocation (parity with baselines)");
    r.dump_json("fig26_mixed_deploy", &results);
}
