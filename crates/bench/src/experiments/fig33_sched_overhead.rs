//! Figure 33 — scheduling overhead vs cluster size (§IX-H), wall-clock
//! version (see `benches/sched_overhead.rs` for the Criterion variant).
//!
//! Times shadow validation and token-level scheduling decisions directly.
//! Paper: both stay below ~0.5 ms; validation cost grows mildly with the
//! number of candidate instances, token-level decisions are per-node and
//! scale-independent.
//!
//! This is the one experiment whose table is a *wall-clock measurement* of
//! the scheduler code itself — its numbers vary run-to-run by nature (and
//! are unaffected by `--threads`, which only drives simulation sweeps).
//!
//! The JSON output is therefore split: `fig33_sched_overhead.json` carries
//! only the deterministic payload (the validation verdicts and headroom
//! minima the timed code computes), so CI byte-diffs it against `goldens/`
//! like every other experiment, while the wall-clock milliseconds land in
//! the separate, non-goldened `fig33_sched_overhead_timing.json`.

use std::time::Instant;

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec, NoiseModel};
use simcore::rng::SimRng;
use simcore::time::SimTime;
use slinfer::quantify::Quantifier;
use slinfer::shadow::{validate, InstView, ShadowReq};
use workload::request::Slo;

fn views(q: &Quantifier, instances: usize, batch: usize) -> Vec<InstView<'_>> {
    (0..instances)
        .map(|i| InstView {
            quant: q,
            reqs: (0..batch)
                .map(|k| ShadowReq {
                    anchor: SimTime::from_secs((i + k) as u64 % 7),
                    slo: Slo::paper(),
                    input_len: 1024,
                    tokens_done: 20 + k as u32,
                    prefill_len: 1024,
                    waiting: false,
                })
                .collect(),
        })
        .collect()
}

pub fn run(_cli: &Cli, r: &mut Report) {
    r.section("Fig 33 — scheduling overhead (wall clock)");
    let q = Quantifier::profile(
        &ModelSpec::llama2_7b(),
        &HardwareSpec::a100_80g(),
        1.0,
        &AnalyticPerf::new(),
        &NoiseModel::off(),
        &mut SimRng::new(1),
        256,
    );
    let slo = Slo::paper();
    let reps = 2_000u32;

    let mut table = Table::new(&["nodes", "shadow validation (ms)", "token-level (ms)"]);
    // Deterministic payload (goldened): what the timed code *computes* —
    // the validation verdict and the min-headroom pick per cluster size.
    let mut dump: Vec<(usize, String, f64)> = Vec::new();
    // Wall-clock payload (non-goldened): the measured milliseconds.
    let mut timing: Vec<(usize, f64, f64)> = Vec::new();
    for nodes in [2usize, 4, 6, 8] {
        // Validation probes more candidates as the cluster grows: model it
        // as validating against `nodes` instances on the busiest node.
        let candidate = || ShadowReq {
            anchor: SimTime::from_secs(30),
            slo: Slo::paper(),
            input_len: 1024,
            tokens_done: 0,
            prefill_len: 1024,
            waiting: true,
        };
        // The verdict is a pure function of the views; capture it once
        // outside the timed loop so the measurement stays allocation-free.
        let verdict = {
            let mut v = views(&q, nodes, 8);
            v[0].reqs.push(candidate());
            let cand = v[0].reqs.len() - 1;
            format!(
                "{:?}",
                validate(&mut v, 0, cand, SimTime::from_secs(30), 1.1)
            )
        };
        // detlint::allow(D003, "this experiment measures wall-clock overhead; output goes to the non-goldened timing blob")
        let t0 = Instant::now();
        for _ in 0..reps {
            let mut v = views(&q, nodes, 8);
            v[0].reqs.push(candidate());
            let cand = v[0].reqs.len() - 1;
            std::hint::black_box(validate(&mut v, 0, cand, SimTime::from_secs(30), 1.1));
        }
        let shadow_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

        let fixed = views(&q, 8, 8);
        let mut min_headroom = f64::INFINITY;
        // detlint::allow(D003, "this experiment measures wall-clock overhead; output goes to the non-goldened timing blob")
        let t1 = Instant::now();
        for _ in 0..reps {
            let now = 30.0f64;
            let mut best = f64::INFINITY;
            for v in &fixed {
                for req in &v.reqs {
                    let ttft = slo.ttft(req.input_len).as_secs_f64();
                    let h = req.anchor.as_secs_f64() + ttft + 0.25 * req.tokens_done as f64 - now;
                    if h < best {
                        best = h;
                    }
                }
            }
            min_headroom = best;
            std::hint::black_box(best);
        }
        let token_ms = t1.elapsed().as_secs_f64() * 1e3 / reps as f64;
        table.row(&[nodes.to_string(), f(shadow_ms, 3), f(token_ms, 4)]);
        dump.push((nodes, verdict, min_headroom));
        timing.push((nodes, shadow_ms, token_ms));
    }
    r.table(&table);
    r.paper_note("Fig 33: shadow validation grows mildly with nodes, stays <0.5 ms;");
    r.paper_note("token-level scheduling is per-node and scale-independent");
    r.dump_json("fig33_sched_overhead", &dump);
    r.dump_json("fig33_sched_overhead_timing", &timing);
}
