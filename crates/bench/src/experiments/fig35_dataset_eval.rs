//! Figure 35 — evaluation across length datasets (§IX-I1).
//!
//! Serves 64 Llama-3.1-8B models under each of the five datasets (HumanEval,
//! AzureCode, AzureConv, LongBench, ShareGPT). The paper: SLINFER uses
//! fewer nodes everywhere; long-output datasets (ShareGPT) reach higher
//! decode throughput; for LongBench the CPUs cannot hold the long-sequence
//! TTFT SLO, so SLINFER avoids them while `sllm+c+s` blindly fills them and
//! violates 63.4% of SLOs.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::{HardwareKind, ModelSpec};
use workload::{serverless::TraceSpec, Dataset};

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    (if quick { 2 } else { Dataset::ALL.len() }) * 2
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 16 } else { 64 };
    let datasets = if cli.quick {
        vec![Dataset::AzureConv, Dataset::LongBench]
    } else {
        Dataset::ALL.to_vec()
    };
    let res = Sweep::new()
        .points(datasets)
        .systems(vec![System::SllmCs, System::Slinfer(Default::default())])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama3_1_8b(), n_models as usize);
            Scenario::new(cx.system.cluster(4, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(
                    TraceSpec::azure_like(n_models, seed)
                        .with_dataset(*cx.point)
                        .generate(),
                )
        })
        .run_cli(cli);

    r.section(&format!("Fig 35 — dataset sweep, {n_models} 8B models"));
    let mut table = Table::new(&[
        "dataset",
        "system",
        "CPU nodes",
        "GPU nodes",
        "dec CPU t/(n·s)",
        "dec GPU t/(n·s)",
        "SLO rate",
    ]);
    let mut results = Vec::new();
    for (pi, ds) in res.points.iter().enumerate() {
        for (si, system) in res.systems.iter().enumerate() {
            let m = res.metrics(pi, si, 0);
            table.row(&[
                ds.name().to_string(),
                system.name(),
                f(m.avg_nodes_used(HardwareKind::CpuAccel), 1),
                f(m.avg_nodes_used(HardwareKind::Gpu), 1),
                f(m.decode_speed_per_node(HardwareKind::CpuAccel), 0),
                f(m.decode_speed_per_node(HardwareKind::Gpu), 0),
                f(m.slo_rate(), 3),
            ]);
            results.push((
                ds.name().to_string(),
                system.name(),
                m.avg_nodes_used(HardwareKind::CpuAccel),
                m.avg_nodes_used(HardwareKind::Gpu),
                m.slo_rate(),
            ));
        }
    }
    r.table(&table);
    r.paper_note("Fig 35: SLINFER consumes fewer resources on every dataset;");
    r.paper_note("ShareGPT's long outputs raise decode throughput (more batching);");
    r.paper_note("LongBench: CPUs cannot meet long-sequence TTFT — SLINFER avoids them,");
    r.paper_note("sllm+c+s fills them and violates 63.4% of SLOs");
    r.dump_json("fig35_dataset_eval", &results);
}
