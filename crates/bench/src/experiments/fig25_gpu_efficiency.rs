//! Figure 25 — GPU efficiency under mixed sizes (§IX-F).
//!
//! Serves a 2:2:2 mix of 3B/7B/13B models and compares GPU memory
//! utilization and batch-size distributions across `sllm`, `sllm+c+s`, and
//! SLINFER. The paper reports SLINFER's memory utilization near 1 (vs a
//! three-tier under-used pattern for the baselines) and a 74% higher
//! average batch size than `sllm`.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::{HardwareKind, ModelSpec};
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(_quick: bool) -> usize {
    3 // same sweep at both tiers
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 24 } else { 48 };
    let parts = [
        (ModelSpec::llama3_2_3b(), 2),
        (ModelSpec::llama2_7b(), 2),
        (ModelSpec::llama2_13b(), 2),
    ];
    let mut res = Sweep::new()
        .points(vec![n_models])
        .systems(vec![
            System::Sllm,
            System::SllmCs,
            System::Slinfer(Default::default()),
        ])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::mixed(&parts, *cx.point as usize);
            Scenario::new(cx.system.cluster(4, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(*cx.point, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!(
        "Fig 25 — GPU efficiency, {n_models} models (3B:7B:13B = 2:2:2)"
    ));
    let mut table = Table::new(&[
        "system",
        "mem util mean",
        "mem util p50",
        "batch mean",
        "batch p95",
        "SLO rate",
    ]);
    let mut results = Vec::new();
    for si in 0..res.systems.len() {
        let name = res.systems[si].name();
        let m = res.metrics_mut(0, si, 0);
        let util_mean = m.mem_util_mean(HardwareKind::Gpu);
        let util_p50 = m.mem_util_gpu.percentile(50.0);
        let batch_mean = m.batch_sizes_gpu.mean();
        let batch_p95 = m.batch_sizes_gpu.percentile(95.0);
        table.row(&[
            name.clone(),
            f(util_mean, 2),
            f(util_p50, 2),
            f(batch_mean, 1),
            f(batch_p95, 0),
            f(m.slo_rate(), 3),
        ]);
        results.push((name, util_mean, util_p50, batch_mean, batch_p95));
    }
    r.table(&table);
    let sllm_batch = results[0].3;
    let slinfer_batch = results[2].3;
    r.line(format!(
        "SLINFER avg batch vs sllm: {:+.0}% (paper: +74%)",
        100.0 * (slinfer_batch / sllm_batch.max(1e-9) - 1.0)
    ));
    r.line(format!(
        "SLINFER GPU memory utilization: {} (paper: near 1; sllm ≈ three-tier, most < 0.5)",
        f(results[2].1, 2)
    ));
    r.paper_note("Fig 25: SLINFER near-optimal memory utilization; +74% average batch vs sllm");
    r.dump_json("fig25_gpu_efficiency", &results);
}
