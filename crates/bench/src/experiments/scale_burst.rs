//! Flash-crowd scale-out under checkpoint distribution (scenario suite).
//!
//! λScale's headline result is that scale-out speed is gated by checkpoint
//! *distribution*, not node availability: serial registry fetches price
//! every new replica at the full remote download, peer-to-peer fetches
//! stream the weights from another node's DRAM over the fabric, and a
//! multicast tree lets mid-transfer replicas immediately re-serve what
//! they have received. This experiment stages that burst: one pre-warm
//! request parks a single warm copy of the model in a node's DRAM cache,
//! then a flash crowd of requests arrives at once and the policy fans the
//! model out across the fleet. The sweep compares the three distribution
//! modes on time-to-N-replicas and TTFT.
//!
//! Turning distribution on is one builder call (this doctest backs the
//! README's "Checkpoint distribution and scale-out bursts" snippet):
//!
//! ```
//! use bench::runner::{world_cfg, System};
//! use cluster::{CheckpointConfig, ClusterSpec, DistConfig, Scenario};
//! use hwmodel::ModelSpec;
//! use workload::serverless::TraceSpec;
//!
//! let models = bench::zoo::replicas(&ModelSpec::llama2_7b(), 4);
//! let sc = Scenario::new(ClusterSpec::heterogeneous(0, 4), models)
//!     .config(world_cfg(7))
//!     .checkpoints(CheckpointConfig::tiered(30_000_000_000, Some(0)))
//!     // Peer fetch + multicast relays + cache-aware keep-alive; the
//!     // default (`DistConfig::off()`) replays the PR 5 loader exactly.
//!     .dist(DistConfig::full())
//!     .workload(TraceSpec::azure_like(4, 7).with_load_scale(0.4).generate());
//! let m = System::Slinfer(Default::default()).run_scenario(sc);
//! // Fabric fetches are accounted separately from the local tiers.
//! assert_eq!(
//!     m.cold_starts,
//!     m.cold_tier_loads.iter().sum::<u64>() + m.peer_fetches
//! );
//! ```

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use cluster::{CheckpointConfig, ClusterSpec, DistConfig};
use hwmodel::ModelSpec;
use simcore::time::{SimDuration, SimTime};
use workload::request::{ModelId, Request, RequestId, SloClass, Trace};

const GB: u64 = 1_000_000_000;

/// Replica count the burst must reach; `time_to_n` measures how fast.
pub const TARGET_REPLICAS: usize = 4;

/// When the flash crowd hits (the pre-warm request arrives at t=1 s and
/// its instance is long unloaded by then — only the DRAM cache copy and
/// the directory entry survive).
const BURST_AT_S: f64 = 60.0;

/// Checkpoint-distribution mode under test.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// `DistConfig::off()`: every miss is a serial registry fetch.
    Registry,
    /// Peer-to-peer fabric fetch from ready replicas only.
    Peer,
    /// Peer fetch + multicast relay tree + cache-aware keep-alive.
    Multicast,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Registry => "registry",
            Mode::Peer => "peer",
            Mode::Multicast => "multicast",
        }
    }

    fn dist(self) -> DistConfig {
        match self {
            Mode::Registry => DistConfig::off(),
            Mode::Peer => DistConfig::peer(),
            Mode::Multicast => DistConfig::full(),
        }
    }
}

/// One sweep point: distribution mode × flash-crowd size.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pt {
    mode: Mode,
    burst: u32,
}

/// The staged trace: one pre-warm request, then `burst` near-simultaneous
/// requests on the same model. A 7B instance on a GPU slot admits 32
/// concurrent requests, so a burst of 112 forces four replicas; the long
/// prompts keep every request in flight until the whole crowd has landed.
fn burst_trace(burst: u32) -> Trace {
    let mut reqs = Vec::with_capacity(burst as usize + 1);
    let mut push = |arrival_s: f64, input_len: u32, output_len: u32| {
        let id = RequestId(reqs.len() as u64);
        reqs.push(Request {
            id,
            model: ModelId(0),
            arrival: SimTime::from_secs_f64(arrival_s),
            input_len,
            output_len,
            class: SloClass(0),
            session: Default::default(),
        });
    };
    push(1.0, 256, 64);
    for i in 0..burst {
        // 20 ms stagger: tight enough that scale-out transfers overlap
        // (so the multicast tree has mid-transfer replicas to relay from),
        // but a deterministic total order of creates.
        push(BURST_AT_S + 0.02 * i as f64, 3072, 256);
    }
    Trace::new(reqs, 1, SimDuration::from_secs(300))
}

fn build_scenario(pt: &Pt, seed: u64) -> Scenario {
    // Single-model zoo on single-GPU nodes: every scale-out replica needs
    // the same checkpoint. DRAM caches hold two copies; the zero-capacity
    // SSD tier forces every true miss all the way to the registry, which
    // is exactly the gap distribution is meant to close.
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 1);
    Scenario::new(ClusterSpec::heterogeneous(0, 6), models)
        .config(world_cfg(seed))
        .checkpoints(CheckpointConfig::tiered(30 * GB, Some(0)))
        .dist(pt.mode.dist())
        .record_activations()
        .workload(burst_trace(pt.burst))
}

/// Seconds from the burst's first arrival until the fleet's
/// `TARGET_REPLICAS`-th replica activation, or `None` if the run never got
/// there. Activations before the burst (the pre-warm) are excluded.
fn time_to_n(activations: &[(ModelId, f64)]) -> Option<f64> {
    activations
        .iter()
        .filter(|(_, t)| *t >= BURST_AT_S)
        .map(|&(_, t)| t - BURST_AT_S)
        .nth(TARGET_REPLICAS - 1)
}

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        3 * 2
    } else {
        6 * 2
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let bursts: &[u32] = if cli.quick { &[112] } else { &[112, 160] };
    let mut points = Vec::new();
    for &burst in bursts {
        for mode in [Mode::Registry, Mode::Peer, Mode::Multicast] {
            points.push(Pt { mode, burst });
        }
    }

    let res = Sweep::new()
        .points(points)
        .systems(vec![System::Sllm, System::Slinfer(Default::default())])
        .seeds(vec![seed])
        .scenario(|cx| build_scenario(cx.point, cx.seed))
        .run_cli(cli);

    r.section("Flash-crowd scale-out — registry fetch vs peer fetch vs multicast");
    r.line("Fleet: 6 × A100; one 7B model; one pre-warmed DRAM copy; a flash");
    r.line(format!(
        "crowd at t={BURST_AT_S} s. time-to-{TARGET_REPLICAS} = seconds until the \
         {TARGET_REPLICAS}th replica activates."
    ));
    let mut table = Table::new(&[
        "mode",
        "burst",
        "system",
        &format!("time-to-{TARGET_REPLICAS} (s)"),
        "TTFT p50 (s)",
        "TTFT p95 (s)",
        "cold",
        "peer",
        "relay",
        "hbm/dram/ssd/remote",
    ]);
    #[derive(serde::Serialize)]
    struct Row {
        mode: String,
        burst: u32,
        system: String,
        time_to_n: Option<f64>,
        target_replicas: usize,
        ttft_p50: f64,
        ttft_p95: f64,
        cold_starts: u64,
        peer_fetches: u64,
        peer_fetch_seconds: f64,
        multicast_relays: u64,
        transfer_reroutes: u64,
        tier_loads: [u64; 4],
    }
    let mut dump: Vec<Row> = Vec::new();
    let points: Vec<Pt> = res.points.clone();
    for (pi, pt) in points.iter().enumerate() {
        for si in 0..res.systems.len() {
            let name = res.systems[si].name();
            let (ttft_p50, ttft_p95) = {
                let mut t = res.metrics(pi, si, 0).ttft_summary();
                (t.percentile(50.0), t.percentile(95.0))
            };
            let m = res.metrics(pi, si, 0);
            let ttn = time_to_n(&m.activations);
            let tiers = m.cold_tier_loads;
            table.row(&[
                pt.mode.label().into(),
                pt.burst.to_string(),
                name.clone(),
                ttn.map(|t| f(t, 2)).unwrap_or_else(|| "—".into()),
                f(ttft_p50, 3),
                f(ttft_p95, 3),
                m.cold_starts.to_string(),
                m.peer_fetches.to_string(),
                m.multicast_relays.to_string(),
                format!("{}/{}/{}/{}", tiers[0], tiers[1], tiers[2], tiers[3]),
            ]);
            dump.push(Row {
                mode: pt.mode.label().into(),
                burst: pt.burst,
                system: name,
                time_to_n: ttn,
                target_replicas: TARGET_REPLICAS,
                ttft_p50,
                ttft_p95,
                cold_starts: m.cold_starts,
                peer_fetches: m.peer_fetches,
                peer_fetch_seconds: m.peer_fetch_seconds,
                multicast_relays: m.multicast_relays,
                transfer_reroutes: m.transfer_reroutes,
                tier_loads: m.cold_tier_loads,
            });
        }
    }
    r.table(&table);
    r.paper_note("scenario suite: cross-node checkpoint distribution (λScale");
    r.paper_note("peer-to-peer fetch and multicast scale-out; LLM-Mesh fleet-");
    r.paper_note("replica-aware eviction) — scale-out speed is gated by how the");
    r.paper_note("checkpoint moves, not by node availability");
    r.dump_json("scale_burst", &dump);
}
