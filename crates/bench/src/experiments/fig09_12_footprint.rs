//! Figures 9 & 12 — memory footprint and concurrency under real workloads
//! (§IV-B, §IV-C).
//!
//! Maps 7B/13B models onto popularity percentiles of the serverless trace
//! and estimates per-model memory footprint (weights + live KV) and burst
//! concurrency. Paper anchors: 7B/13B floors at 14/26 GB; top-1% peaks at
//! 169/263 GB driven by >128-concurrency bursts; yet even the top-1%'s
//! footprint stays below 17/43 GB more than half the time.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;
use workload::stats::TraceStats;

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    r.section("Fig 9/12 — footprint & concurrency by popularity percentile");
    // A 512-function trace gives clean P50–P99 percentile slots.
    let trace = TraceSpec::azure_like(512, seed).generate();
    let stats = TraceStats::from_trace(&trace);
    // Average request residency for the concurrency estimator: prefill +
    // ~230 output tokens at 120 ms/token mixed ≈ 30 s; the paper's bursts
    // overlap within ~1 min windows.
    let service_s = 45.0;

    let mut table = Table::new(&[
        "percentile",
        "peak conc",
        "7B floor GB",
        "7B median GB",
        "7B peak GB",
        "13B peak GB",
    ]);
    let mut dump = Vec::new();
    for pct in [1.0, 5.0, 10.0, 20.0, 50.0] {
        let model = stats.model_at_top_percent(pct);
        let series = stats.concurrency_series(model, service_s);
        let peak = series.iter().map(|&(_, c)| c).max().unwrap_or(0);
        let median = {
            let mut cs: Vec<usize> = series.iter().map(|&(_, c)| c).collect();
            cs.sort_unstable();
            cs.get(cs.len() / 2).copied().unwrap_or(0)
        };
        // Footprint: weights + concurrency × (avg context ≈ 1.3 K tokens) × C.
        let ctx_tokens = 1300u64;
        let fp = |m: &ModelSpec, conc: usize| {
            (m.weights_bytes() + conc as u64 * ctx_tokens * m.kv_bytes_per_token()) as f64 / 1e9
        };
        let m7 = ModelSpec::llama2_7b();
        let m13 = ModelSpec::llama2_13b();
        table.row(&[
            format!("P{:.0}", 100.0 - pct),
            peak.to_string(),
            f(m7.weights_bytes() as f64 / 1e9, 0),
            f(fp(&m7, median), 0),
            f(fp(&m7, peak), 0),
            f(fp(&m13, peak), 0),
        ]);
        dump.push((pct, peak, fp(&m7, peak), fp(&m13, peak)));
    }
    r.table(&table);
    let top = stats.model_at_top_percent(1.0);
    r.line(format!(
        "top-1% model: {} requests; top-1% of models contribute {:.0}% of requests",
        stats.per_model_counts[top.0 as usize],
        100.0 * stats.top_models_share(0.01)
    ));
    r.paper_note(
        "Fig 9: 7B/13B floors 14/26 GB; top-1% peaks 169/263 GB (bursts >128 concurrent);",
    );
    r.paper_note("even top-1% sits below 17/43 GB more than 50% of the time");
    r.paper_note("Fig 12: top-1% concurrency spans 1 to >128; contributes ~26% of requests");
    r.dump_json("fig09_12_footprint", &dump);
}
