//! Figure 29 — harvested CPU cores per GPU (§IX-I3).
//!
//! With only 4 GPU nodes plus {0, 8, 16, 32} harvested host-CPU cores per
//! GPU, compares NEO+ (KV/attention offload), `sllm+c+s` (statically shares
//! the harvested cores as half-slots), and SLINFER (elastically serves on
//! them). Paper SLO-miss rates: NEO+ 46/45/41/34%, sllm+c+s 46/52/49/38%,
//! SLINFER 19/16/12/9%.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use baselines::NeoPlus;
use cluster::{ClusterSpec, RunMetrics};
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2 * 3
    } else {
        4 * 3
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 32 } else { 64 };
    let cores_sweep: Vec<u32> = if cli.quick {
        vec![0, 32]
    } else {
        vec![0, 8, 16, 32]
    };
    let res = Sweep::new()
        .points(cores_sweep)
        .systems(vec![
            System::NeoPlus,
            System::SllmCs,
            System::Slinfer(Default::default()),
        ])
        .seeds(vec![seed])
        .scenario(|cx| {
            let cores = *cx.point;
            let cluster = match cx.system {
                // NEO+: offload-extended GPU nodes, exclusive allocation.
                System::NeoPlus => NeoPlus::cluster(4, cores),
                // sllm+c+s: harvested cores appear as fractional CPU
                // nodes, halved once they are big enough to split.
                System::SllmCs => {
                    let mut cs_cluster = ClusterSpec::statically_shared(0, 4);
                    let harvested = ClusterSpec::heterogeneous(0, 0).with_harvested_cpus(4, cores);
                    for mut n in harvested.nodes {
                        if cores >= 16 {
                            n = cluster::NodeSpec::split(n.hw, 2);
                        }
                        cs_cluster.nodes.push(n);
                    }
                    cs_cluster
                }
                // SLINFER: harvested cores as whole fractional CPU nodes.
                _ => ClusterSpec::heterogeneous(0, 4).with_harvested_cpus(4, cores),
            };
            Scenario::new(
                cluster,
                zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize),
            )
            .config(world_cfg(cx.seed))
            .workload(TraceSpec::azure_like(n_models, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!(
        "Fig 29 — harvested cores, {n_models} 7B models, 4 GPUs"
    ));
    let mut table = Table::new(&["cores/GPU", "NEO+ miss%", "sllm+c+s miss%", "SLINFER miss%"]);
    let mut results = Vec::new();
    let miss = |m: &RunMetrics| 100.0 * (1.0 - m.slo_rate());
    for (pi, &cores) in res.points.iter().enumerate() {
        let neo = miss(res.metrics(pi, 0, 0));
        let cs = miss(res.metrics(pi, 1, 0));
        let sl = miss(res.metrics(pi, 2, 0));
        table.row(&[cores.to_string(), f(neo, 0), f(cs, 0), f(sl, 0)]);
        results.push((cores, neo, cs, sl));
    }
    r.table(&table);
    r.paper_note("Fig 29: NEO+ 46/45/41/34, sllm+c+s 46/52/49/38, SLINFER 19/16/12/9 % miss");
    r.paper_note("SLINFER lowest at every core count; NEO+ improves only mildly (no sharing)");
    r.dump_json("fig29_harvested_cores", &results);
}
