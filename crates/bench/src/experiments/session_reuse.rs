//! Multi-turn session serving with KV/prefix reuse (scenario suite).
//!
//! Chat-style traffic re-submits a growing prefix every turn: turn `k`'s
//! prompt is the whole conversation so far. A sessionless serving stack
//! recomputes that prefix from scratch each time; a session-aware one parks
//! the finished turn's KV on the instance that produced it, routes the next
//! turn back there (affinity), and prefills only the uncached tail. This
//! experiment drives the same multi-turn trace (`workload::sessions`)
//! through both, sweeping the affinity `stickiness` knob, and reports the
//! split the paper's serving sections care about: cold (turn-0) vs warm
//! (follow-up) TTFT, prefix tokens served from cache, and the KV bytes
//! migrated when a turn lands off its home instance anyway.
//!
//! Turning sessions on is one builder call (this doctest backs the
//! README's "Sessions and prefix reuse" snippet):
//!
//! ```
//! use bench::runner::{world_cfg, System};
//! use cluster::{ClusterSpec, Scenario, SessionConfig};
//! use hwmodel::ModelSpec;
//! use simcore::SimDuration;
//! use workload::SessionSpec;
//!
//! let models = bench::zoo::replicas(&ModelSpec::llama2_7b(), 4);
//! // Keep-alive must outlast think-time gaps (~30 s between turns), or
//! // idle instances unload and take their parked session KV with them.
//! let mut cfg = world_cfg(7);
//! cfg.keep_alive = SimDuration::from_secs(600);
//! let sc = Scenario::new(ClusterSpec::heterogeneous(0, 4), models)
//!     .config(cfg)
//!     // Park per-session KV, stick follow-up turns to it, migrate when
//!     // they land elsewhere; `SessionConfig::off()` (the default)
//!     // replays sessionless runs byte-identically.
//!     .sessions(SessionConfig::reuse(1.0))
//!     .workload(SessionSpec::chat_like(4, 7).generate());
//! let m = System::Slinfer(Default::default()).run_scenario(sc);
//! // Follow-up turns found their prefix parked: cached tokens were
//! // served instead of recomputed.
//! assert!(m.prefix_hit_tokens > 0);
//! assert!(m.warm_ttft_summary().count() > 0);
//! ```

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use cluster::{ClusterSpec, SessionConfig};
use hwmodel::ModelSpec;
use workload::SessionSpec;

/// One sweep point: session mode × workload size (model count).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pt {
    /// `None` = sessions off (the sessionless baseline); `Some(s)` =
    /// prefix reuse with affinity stickiness `s` and KV migration on.
    stickiness: Option<f64>,
    n_models: u32,
}

impl Pt {
    fn label(&self) -> String {
        match self.stickiness {
            None => "off".into(),
            Some(s) => format!("stick={s:.1}"),
        }
    }

    fn sessions(&self) -> SessionConfig {
        match self.stickiness {
            None => SessionConfig::off(),
            Some(s) => SessionConfig::reuse(s),
        }
    }
}

fn build_scenario(pt: &Pt, seed: u64) -> Scenario {
    let models = zoo::replicas(&ModelSpec::llama2_7b(), pt.n_models as usize);
    // Chat turns arrive ~30 s apart; the default 1 s keep-alive would
    // unload every home instance (and drop its parked KV) between turns,
    // so use the serverless keep-alive tier the `scale` experiment uses.
    let mut cfg = world_cfg(seed);
    cfg.keep_alive = simcore::SimDuration::from_secs(600);
    Scenario::new(ClusterSpec::heterogeneous(0, 4), models)
        .config(cfg)
        .sessions(pt.sessions())
        .workload(SessionSpec::chat_like(pt.n_models, seed).generate())
}

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        4 * 2
    } else {
        8 * 2
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let sizes: &[u32] = if cli.quick { &[4] } else { &[4, 8] };
    let modes: &[Option<f64>] = &[None, Some(0.0), Some(0.5), Some(1.0)];
    let mut points = Vec::new();
    for &n_models in sizes {
        for &stickiness in modes {
            points.push(Pt {
                stickiness,
                n_models,
            });
        }
    }

    let res = Sweep::new()
        .points(points)
        .systems(vec![System::Sllm, System::Slinfer(Default::default())])
        .seeds(vec![seed])
        .scenario(|cx| build_scenario(cx.point, cx.seed))
        .run_cli(cli);

    r.section("Multi-turn sessions — prefix reuse, affinity, KV migration");
    r.line("Chat-like sessions (growing per-turn context, think-time gaps).");
    r.line("cold = session openers + sessionless; warm = follow-up turns.");
    r.line("At chat-scale load each model runs one instance, so affinity");
    r.line("coincides with natural routing: the off-vs-on contrast dominates");
    r.line("and the off-home migration path stays idle (it is covered by");
    r.line("world-level unit tests instead).");
    let mut table = Table::new(&[
        "mode",
        "models",
        "system",
        "cold TTFT p50 (s)",
        "warm TTFT p50 (s)",
        "warm TPOT (s)",
        "hits",
        "hit tokens",
        "migrations",
        "migrated MB",
        "SLO rate",
    ]);
    #[derive(serde::Serialize)]
    struct Row {
        mode: String,
        n_models: u32,
        system: String,
        requests: usize,
        cold_ttft_p50: f64,
        warm_ttft_p50: f64,
        warm_tpot_mean: f64,
        prefix_hits: usize,
        prefix_hit_tokens: u64,
        kv_migrations: u64,
        kv_migration_bytes: u64,
        slo_rate: f64,
    }
    let mut dump: Vec<Row> = Vec::new();
    let points: Vec<Pt> = res.points.clone();
    for (pi, pt) in points.iter().enumerate() {
        for si in 0..res.systems.len() {
            let name = res.systems[si].name();
            let m = res.metrics(pi, si, 0);
            let cold_p50 = m.cold_ttft_summary().percentile(50.0);
            let warm_p50 = m.warm_ttft_summary().percentile(50.0);
            table.row(&[
                pt.label(),
                pt.n_models.to_string(),
                name.clone(),
                f(cold_p50, 3),
                f(warm_p50, 3),
                f(m.warm_tpot_mean(), 4),
                m.prefix_hits().to_string(),
                m.prefix_hit_tokens.to_string(),
                m.kv_migrations.to_string(),
                f(m.kv_migration_bytes as f64 / 1e6, 1),
                f(m.slo_rate(), 3),
            ]);
            dump.push(Row {
                mode: pt.label(),
                n_models: pt.n_models,
                system: name,
                requests: m.total(),
                cold_ttft_p50: cold_p50,
                warm_ttft_p50: warm_p50,
                warm_tpot_mean: m.warm_tpot_mean(),
                prefix_hits: m.prefix_hits(),
                prefix_hit_tokens: m.prefix_hit_tokens,
                kv_migrations: m.kv_migrations,
                kv_migration_bytes: m.kv_migration_bytes,
                slo_rate: m.slo_rate(),
            });
        }
    }
    r.table(&table);
    r.paper_note("scenario suite: multi-turn chat with KV/prefix reuse —");
    r.paper_note("follow-up turns skip recomputing their conversation prefix");
    r.paper_note("when routed to (or migrated toward) the KV-holding instance");
    r.dump_json("session_reuse", &dump);
}
