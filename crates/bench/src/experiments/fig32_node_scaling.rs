//! Figure 32 — performance under different node counts (§IX-H).
//!
//! Sweeps the cluster from 1 CPU + 1 GPU up to 4 CPU + 4 GPU under a fixed
//! 64-model workload. The paper: SLINFER leads at every size and its
//! 4-node configuration matches `sllm+c+s` on eight nodes, with
//! diminishing returns at the top end.

use crate::cli::Cli;
use crate::report::{Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;

/// A sweep point: one symmetric k+k size, or the paper's 8-vs-4-node
/// headline comparison (sllm+c+s on 4+4 vs SLINFER on 2+2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pt {
    Size(usize),
    Headline,
}

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2 * 2
    } else {
        5 * 2
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 24 } else { 64 };
    let sizes: Vec<usize> = if cli.quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4]
    };
    let mut points: Vec<Pt> = sizes.iter().map(|&k| Pt::Size(k)).collect();
    if !cli.quick {
        points.push(Pt::Headline);
    }
    let res = Sweep::new()
        .points(points)
        .systems(vec![System::SllmCs, System::Slinfer(Default::default())])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);
            let (n_cpu, n_gpu) = match (cx.point, cx.system_ix) {
                (Pt::Size(k), _) => (*k, *k),
                // Headline: 8 nodes of sllm+c+s vs 4 nodes of SLINFER.
                (Pt::Headline, 0) => (4, 4),
                (Pt::Headline, _) => (2, 2),
            };
            Scenario::new(cx.system.cluster(n_cpu, n_gpu, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(n_models, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!("Fig 32 — node-count sweep, {n_models} 7B models"));
    let trace_len = TraceSpec::azure_like(n_models, seed).generate().len();
    let mut table = Table::new(&[
        "nodes (CPU+GPU)",
        "sllm+c+s SLO-met",
        "SLINFER SLO-met",
        "total",
    ]);
    let mut results = Vec::new();
    for (pi, pt) in res.points.iter().enumerate() {
        let Pt::Size(k) = pt else { continue };
        let cs = res.metrics(pi, 0, 0).slo_met();
        let sl = res.metrics(pi, 1, 0).slo_met();
        table.row(&[
            format!("{k}+{k}"),
            cs.to_string(),
            sl.to_string(),
            trace_len.to_string(),
        ]);
        results.push((*k, cs, sl));
    }
    r.table(&table);
    if let Some(pi) = res.points.iter().position(|p| *p == Pt::Headline) {
        // The paper's headline: SLINFER at 4+4 ≈ sllm+c+s at 8 nodes.
        r.line(format!(
            "SLINFER on 4 nodes: {} SLO-met vs sllm+c+s on 8 nodes: {}",
            res.metrics(pi, 1, 0).slo_met(),
            res.metrics(pi, 0, 0).slo_met()
        ));
    }
    r.paper_note("Fig 32: SLINFER leads at every node count; 4-node SLINFER ≈ 8-node sllm+c+s");
    r.dump_json("fig32_node_scaling", &results);
}
