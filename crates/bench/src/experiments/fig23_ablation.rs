//! Figure 23 — ablation study (§IX-C).
//!
//! Serves 64 7B-sized models while disabling each SLINFER component:
//! full / w/o CPU / w/o consolidation / w/o sharing. The paper reports
//! higher GPU usage whenever any component is disabled, and an SLO
//! compliance drop to ~89% without sharing.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System, SystemResult};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::ModelSpec;
use slinfer::SlinferConfig;
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(_quick: bool) -> usize {
    SlinferConfig::ablations().len()
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 16 } else { 64 };
    let ablations = SlinferConfig::ablations();
    let res = Sweep::new()
        .points(vec![n_models])
        .systems(
            ablations
                .iter()
                .map(|(_, cfg)| System::Slinfer(cfg.clone())),
        )
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama2_7b(), *cx.point as usize);
            Scenario::new(cx.system.cluster(4, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(*cx.point, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!("Fig 23 — ablation, {n_models} 7B-sized models"));
    let mut table = Table::new(&[
        "variant",
        "SLO rate",
        "CPU nodes",
        "GPU nodes",
        "preempt",
        "scale ops",
        "dropped",
    ]);
    let mut results: Vec<(String, SystemResult)> = Vec::new();
    let mut timelines: Vec<(String, Vec<(f64, u32)>)> = Vec::new();
    for (si, (label, _)) in ablations.iter().enumerate() {
        let m = res.metrics(0, si, 0);
        table.row(&[
            label.to_string(),
            f(m.slo_rate(), 3),
            f(m.avg_nodes_used(hwmodel::HardwareKind::CpuAccel), 1),
            f(m.avg_nodes_used(hwmodel::HardwareKind::Gpu), 1),
            m.preemptions.to_string(),
            m.scale_ops.to_string(),
            m.dropped.to_string(),
        ]);
        let tl: Vec<(f64, u32)> = m
            .usage_timeline
            .iter()
            .map(|s| (s.t, s.gpu_nodes_used))
            .collect();
        timelines.push((label.to_string(), tl));
        results.push((label.to_string(), res.summary(0, si, 0)));
    }
    r.table(&table);
    r.paper_note("Fig 23: disabling any component raises GPU usage; w/o sharing SLO drops to ~89%");

    // Truncated GPU-usage timeline (Fig 23 top panel, first 300 s).
    r.line("GPU usage timeline (0–300 s, 30 s buckets):");
    let mut tl_table = Table::new(&[
        "t(s)",
        "SLINFER-Full",
        "w/o CPU",
        "w/o Consolidation",
        "w/o Sharing",
    ]);
    for bucket in 0..10 {
        let t0 = bucket as f64 * 30.0;
        let mut row = vec![format!("{t0:.0}")];
        for (_, tl) in &timelines {
            let v = tl
                .iter()
                .filter(|(t, _)| *t >= t0 && *t < t0 + 30.0)
                .map(|(_, g)| *g as f64)
                .sum::<f64>()
                / tl.iter()
                    .filter(|(t, _)| *t >= t0 && *t < t0 + 30.0)
                    .count()
                    .max(1) as f64;
            row.push(f(v, 1));
        }
        tl_table.row(&row);
    }
    r.table(&tl_table);
    r.dump_json("fig23_ablation", &results);
}
