//! Cold-start sweep over the tiered checkpoint hierarchy (scenario suite).
//!
//! ServerlessLLM reports order-of-magnitude cold-start spread between a
//! DRAM-cached checkpoint and a remote fetch, and schedules new instances
//! onto the node with the lowest estimated startup time; λScale dodges the
//! registry entirely by distributing models across nodes. This experiment
//! exercises that whole axis in the simulator: the fleet's per-node DRAM
//! checkpoint caches are capacity-constrained
//! ([`cluster::CheckpointConfig::tiered`]), so a churning model zoo keeps
//! evicting and re-fetching checkpoints, and the sweep reports TTFT next
//! to cold-start counts and loading seconds *per tier* — HBM hit, DRAM
//! cache, local SSD, remote fetch. The `flat` row pins the legacy loader
//! (infinite pre-staged DRAM, no contention) as the baseline.
//!
//! Building a cache-constrained scenario is one builder call (this
//! doctest backs the README's "Checkpoint tiers and cold starts" snippet):
//!
//! ```
//! use bench::runner::{world_cfg, System};
//! use cluster::{CheckpointConfig, ClusterSpec, Scenario};
//! use hwmodel::ModelSpec;
//! use workload::serverless::TraceSpec;
//!
//! // Zoo of 8 7B models churning through 2 GPUs whose DRAM cache holds
//! // only two checkpoints; SSD-local copies cap the miss penalty.
//! let models = bench::zoo::replicas(&ModelSpec::llama2_7b(), 8);
//! let sc = Scenario::new(ClusterSpec::heterogeneous(0, 2), models)
//!     .config(world_cfg(7))
//!     .checkpoints(CheckpointConfig::tiered(30_000_000_000, None))
//!     .workload(TraceSpec::azure_like(8, 7).with_load_scale(0.3).generate());
//! let m = System::Slinfer(Default::default()).run_scenario(sc);
//! // Per-tier accounting: loads begun, seconds spent, [hbm, dram, ssd, remote].
//! assert_eq!(m.cold_starts, m.cold_tier_loads.iter().sum::<u64>());
//! assert!(m.cold_start_seconds_total() >= 0.0);
//! ```

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use cluster::{CheckpointConfig, ClusterSpec};
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;

const GB: u64 = 1_000_000_000;

/// One sweep point: DRAM cache capacity × model-zoo size × load.
/// `cache_gb == None` is the flat legacy loader baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pt {
    cache_gb: Option<u64>,
    zoo: u32,
    load: f64,
}

impl Pt {
    fn cache_label(&self) -> String {
        match self.cache_gb {
            None => "flat".into(),
            Some(gb) => format!("{gb} GB"),
        }
    }

    fn checkpoints(&self) -> CheckpointConfig {
        match self.cache_gb {
            // The legacy loader: infinite pre-staged DRAM, no contention.
            None => CheckpointConfig::flat(),
            // Finite DRAM cache; the SSD tier holds twice that, so deep
            // zoos still overflow to remote registry fetches.
            Some(gb) => CheckpointConfig::tiered(gb * GB, Some(2 * gb * GB)),
        }
    }
}

fn build_scenario(pt: &Pt, seed: u64) -> Scenario {
    let models = zoo::replicas(&ModelSpec::llama2_7b(), pt.zoo as usize);
    Scenario::new(ClusterSpec::heterogeneous(0, 2), models)
        .config(world_cfg(seed))
        .checkpoints(pt.checkpoints())
        .workload(
            TraceSpec::azure_like(pt.zoo, seed)
                .with_load_scale(pt.load)
                .generate(),
        )
}

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        3 * 2 // 3 capacities × 1 zoo × 1 load × 2 systems
    } else {
        4 * 2 * 2 * 2
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let caches: &[Option<u64>] = if cli.quick {
        &[None, Some(15), Some(60)]
    } else {
        &[None, Some(15), Some(30), Some(60)]
    };
    let zoos: &[u32] = if cli.quick { &[8] } else { &[8, 16] };
    let loads: &[f64] = if cli.quick { &[0.6] } else { &[0.6, 1.2] };
    let mut points = Vec::new();
    for &zoo in zoos {
        for &load in loads {
            for &cache_gb in caches {
                points.push(Pt {
                    cache_gb,
                    zoo,
                    load,
                });
            }
        }
    }

    let res = Sweep::new()
        .points(points)
        .systems(vec![System::Sllm, System::Slinfer(Default::default())])
        .seeds(vec![seed])
        .scenario(|cx| build_scenario(cx.point, cx.seed))
        .run_cli(cli);

    r.section("Cold starts across checkpoint tiers — DRAM cache capacity × zoo × load");
    r.line("Fleet: 2 × A100; 7B zoo; SSD tier = 2× the DRAM cache; `flat` =");
    r.line("legacy loader (infinite pre-staged DRAM, no contention).");
    let mut table = Table::new(&[
        "cache",
        "zoo",
        "load",
        "system",
        "SLO-met",
        "TTFT p50 (s)",
        "TTFT p95 (s)",
        "cold",
        "hbm/dram/ssd/remote",
        "load-s",
    ]);
    #[derive(serde::Serialize)]
    struct Row {
        cache: String,
        zoo: u32,
        load: f64,
        system: String,
        slo_met: usize,
        total: usize,
        ttft_p50: f64,
        ttft_p95: f64,
        cold_starts: u64,
        tier_loads: [u64; 4],
        tier_seconds: [f64; 4],
    }
    let mut dump: Vec<Row> = Vec::new();
    let points: Vec<Pt> = res.points.clone();
    for (pi, pt) in points.iter().enumerate() {
        for si in 0..res.systems.len() {
            let name = res.systems[si].name();
            let (ttft_p50, ttft_p95) = {
                let mut t = res.metrics(pi, si, 0).ttft_summary();
                (t.percentile(50.0), t.percentile(95.0))
            };
            let m = res.metrics(pi, si, 0);
            let tiers = m.cold_tier_loads;
            table.row(&[
                pt.cache_label(),
                pt.zoo.to_string(),
                f(pt.load, 1),
                name.clone(),
                format!("{}/{}", m.slo_met(), m.total()),
                f(ttft_p50, 3),
                f(ttft_p95, 3),
                m.cold_starts.to_string(),
                format!("{}/{}/{}/{}", tiers[0], tiers[1], tiers[2], tiers[3]),
                f(m.cold_start_seconds_total(), 1),
            ]);
            dump.push(Row {
                cache: pt.cache_label(),
                zoo: pt.zoo,
                load: pt.load,
                system: name,
                slo_met: m.slo_met(),
                total: m.total(),
                ttft_p50,
                ttft_p95,
                cold_starts: m.cold_starts,
                tier_loads: m.cold_tier_loads,
                tier_seconds: m.cold_tier_seconds,
            });
        }
    }
    r.table(&table);
    r.paper_note("scenario suite: tiered checkpoint storage with locality-aware");
    r.paper_note("cold starts (ServerlessLLM multi-tier loading + startup-time-");
    r.paper_note("estimated scheduling; λScale fast model distribution) — a DRAM");
    r.paper_note("hit vs a remote fetch is an order-of-magnitude cold-start gap");
    r.dump_json("cold_start", &dump);
}
