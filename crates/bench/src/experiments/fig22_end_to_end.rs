//! Figure 22 — end-to-end comparison (§IX-B).
//!
//! For each model size (3B/7B/13B) and zoo size (32/64/128), runs the four
//! systems on the Azure-like trace over 4 CPU + 4 GPU nodes and reports the
//! paper's four panels: SLO-met requests, TTFT percentiles, per-node decode
//! speed, and average nodes used.
//!
//! Paper headline (at 128 models): SLINFER serves **+86–154%** more SLO-met
//! requests than `sllm`, **+47–62%** more than `sllm+c`, and **+18–70%**
//! more than `sllm+c+s`.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    let points = if quick {
        1
    } else {
        zoo::size_bases().len() * 3
    };
    points * System::paper_lineup().len()
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let counts: Vec<u32> = if cli.quick {
        vec![32]
    } else {
        vec![32, 64, 128]
    };
    let mut points: Vec<(&'static str, ModelSpec, u32)> = Vec::new();
    for (size_name, base) in zoo::size_bases() {
        if cli.quick && size_name != "7B" {
            continue;
        }
        for &n in &counts {
            points.push((size_name, base.clone(), n));
        }
    }
    let res = Sweep::new()
        .points(points)
        .systems(System::paper_lineup())
        .seeds(vec![seed])
        .scenario(|cx| {
            let (_, base, n_models) = cx.point;
            let models = zoo::replicas(base, *n_models as usize);
            Scenario::new(cx.system.cluster(4, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(*n_models, seed).generate())
        })
        .run_cli(cli);

    let mut all_results = Vec::new();
    for (pi, (size_name, _, n_models)) in res.points.iter().enumerate() {
        r.section(&format!("Fig 22 — {size_name}-sized, {n_models} models"));
        let trace = TraceSpec::azure_like(*n_models, seed).generate();
        r.line(format!(
            "trace: {} requests over {:.0} min (aggregate {:.0} RPM)",
            trace.len(),
            trace.duration.as_secs_f64() / 60.0,
            trace.aggregate_rpm()
        ));
        let mut table = Table::new(&[
            "system",
            "SLO-met",
            "total",
            "rate",
            "TTFT p50(s)",
            "TTFT p95(s)",
            "CPU nodes",
            "GPU nodes",
            "dec CPU t/(n·s)",
            "dec GPU t/(n·s)",
            "dropped",
        ]);
        let mut row_results = Vec::new();
        for si in 0..res.systems.len() {
            let sr = res.summary(pi, si, 0);
            table.row(&[
                sr.system.clone(),
                sr.slo_met.to_string(),
                sr.total.to_string(),
                f(sr.slo_rate, 3),
                f(sr.ttft_p50, 2),
                f(sr.ttft_p95, 2),
                f(sr.cpu_nodes, 1),
                f(sr.gpu_nodes, 1),
                f(sr.cpu_decode_speed, 0),
                f(sr.gpu_decode_speed, 0),
                sr.dropped.to_string(),
            ]);
            row_results.push(sr);
        }
        r.table(&table);
        if *n_models == 128 {
            let slinfer = row_results.last().unwrap().slo_met as f64;
            let vs = |ix: usize| 100.0 * (slinfer / row_results[ix].slo_met.max(1) as f64 - 1.0);
            r.line(format!(
                "SLINFER SLO-met vs sllm: {:+.0}%  vs sllm+c: {:+.0}%  vs sllm+c+s: {:+.0}%",
                vs(0),
                vs(1),
                vs(2)
            ));
            r.paper_note("at 128 models: +86-154% vs sllm, +47-62% vs sllm+c, +18-70% vs sllm+c+s");
        }
        all_results.push((size_name.to_string(), *n_models, row_results));
    }
    r.dump_json("fig22_end_to_end", &all_results);
}
