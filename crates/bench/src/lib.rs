//! Experiment harness for the SLINFER reproduction.
//!
//! Each table/figure of the paper has one binary under `src/bin/` (see
//! `DESIGN.md` for the index). This library holds what they share:
//!
//! - [`runner`] — the [`System`] enum (sllm / sllm+c / sllm+c+s / SLINFER /
//!   PD variants / NEO+) with per-system cluster construction and a single
//!   `run` entry point, so every experiment exercises every system through
//!   identical machinery.
//! - [`report`] — fixed-width table printing, paper-vs-measured annotation,
//!   and JSON result dumps under `results/`.
//! - [`zoo`] — model-zoo builders (replica zoos, popularity mixes).

pub mod report;
pub mod runner;
pub mod zoo;

pub use report::Table;
pub use runner::{System, SystemResult};
