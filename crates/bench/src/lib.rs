//! Experiment harness for the SLINFER reproduction.
//!
//! Each table/figure of the paper is one [`registry`] entry with a binary
//! stub under `src/bin/` (plus the `bench` multi-runner). This library
//! holds the shared machinery:
//!
//! - [`cli`] — the unified `--seed`/`--quick`/`--threads`/`--json` command
//!   line every binary accepts (with `SEED`/`BENCH_QUICK` env fallbacks).
//! - [`sweep`] — the declarative (point × system × seed) [`sweep::Sweep`]
//!   grid and its parallel, deterministic driver (progress/ETA on stderr
//!   via [`sweep::Sweep::run_cli`]). Cells build a composable
//!   [`cluster::Scenario`] (fleet × workload × environment) and hand it to
//!   the system axis.
//! - [`runner`] — the [`System`] enum (sllm / sllm+c / sllm+c+s / SLINFER /
//!   PD variants / NEO+) with per-system cluster construction and the
//!   single [`runner::System::run_scenario`] entry point, so every
//!   experiment exercises every system through identical machinery.
//! - [`report`] — the [`Report`] sink experiments append to (tables,
//!   prose, paper notes, JSON blobs); presentation is serial and ordered,
//!   which keeps output byte-identical at any worker count.
//! - [`memo`] — per-cell memoization for `bench all`: identical
//!   (point × system × seed) cells an earlier experiment in the same
//!   invocation already ran are served from cache, byte-identically.
//! - [`registry`] — the experiment registry tooling enumerates, and the
//!   shared binary entry point [`registry::main_for`].
//! - [`experiments`] — the 26 paper experiments plus the scenario suite
//!   (`slo_mix`, `fault_drain`, `mixed_arrivals`).
//! - [`zoo`] — model-zoo builders (replica zoos, popularity mixes).

#![forbid(unsafe_code)]

pub mod cli;
pub mod experiments;
pub mod memo;
pub mod registry;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod zoo;

pub use cli::Cli;
pub use registry::{find, main_for, run_experiment, Experiment, REGISTRY};
pub use report::{Report, Table};
pub use runner::{System, SystemResult};
pub use sweep::{Scenario, Sweep, SweepResults};
