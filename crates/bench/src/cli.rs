//! Unified experiment command line.
//!
//! Every figure binary accepts the same four flags, replacing the ad-hoc
//! `arg_seed`/`quick_mode` env parsing the binaries used to copy-paste:
//!
//! - `--seed N` — root seed for traces and worlds (default 42).
//! - `--quick` — shrink sweeps for smoke runs (CI).
//! - `--threads N` — sweep-driver workers; 0 (default) picks the machine's
//!   available parallelism. Results are byte-identical at any value.
//! - `--json` — echo the machine-readable result blobs to stdout after the
//!   tables (files under `results/` are always written, best-effort).
//!
//! The `SEED` and `BENCH_QUICK=1` environment variables remain as fallbacks
//! for CI compatibility (`BENCH_THREADS` joins them); explicit flags win.
//! Malformed values — `--seed foo`, a dangling `--seed`, an unknown flag —
//! are hard errors, not silent fallbacks to defaults.

use std::fmt;

/// Parsed experiment options shared by all figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Root seed (`--seed`, env `SEED`, default 42).
    pub seed: u64,
    /// Shrunken sweeps for smoke runs (`--quick`, env `BENCH_QUICK=1`).
    pub quick: bool,
    /// Sweep-driver worker threads; 0 means auto (`--threads`, env
    /// `BENCH_THREADS`).
    pub threads: usize,
    /// Echo JSON result blobs to stdout (`--json`).
    pub json: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            seed: 42,
            quick: false,
            threads: 0,
            json: false,
        }
    }
}

/// A rejected command line, with the offending token and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// What a parse produced: options to run with, or a help request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// Run the experiment with these options.
    Run(Cli),
    /// `--help`/`-h` was given; print usage and exit 0.
    Help,
}

/// Usage text shown for `--help` and appended to parse errors.
pub const USAGE: &str = "\
options:
  --seed N      root seed for traces and worlds (default 42; env SEED)
  --quick       shrink sweeps for smoke runs (env BENCH_QUICK=1)
  --threads N   sweep workers, 0 = auto (default 0; env BENCH_THREADS)
  --json        echo JSON result blobs to stdout after the tables
  -h, --help    show this help";

impl Cli {
    /// Parses flags strictly from `args` (program name already stripped),
    /// starting from environment fallbacks.
    pub fn parse<I, S>(args: I) -> Result<Parsed, CliError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self::parse_from(Cli::from_env()?, args)
    }

    /// Parses flags strictly on top of an explicit `base` configuration —
    /// the env-free core of [`Cli::parse`], so tests stay hermetic under an
    /// exported `SEED`/`BENCH_QUICK`/`BENCH_THREADS`.
    pub fn parse_from<I, S>(base: Cli, args: I) -> Result<Parsed, CliError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut cli = base;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            match arg {
                "--seed" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError("--seed requires a value".into()))?;
                    cli.seed = parse_u64("--seed", v.as_ref())?;
                }
                "--threads" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError("--threads requires a value".into()))?;
                    cli.threads = parse_u64("--threads", v.as_ref())? as usize;
                }
                "--quick" => cli.quick = true,
                "--json" => cli.json = true,
                "-h" | "--help" => return Ok(Parsed::Help),
                other => {
                    return Err(CliError(format!(
                        "unrecognized argument `{other}`\n{USAGE}"
                    )))
                }
            }
        }
        Ok(Parsed::Run(cli))
    }

    /// Defaults overridden by the `SEED`/`BENCH_QUICK`/`BENCH_THREADS`
    /// environment fallbacks. A malformed `SEED` or `BENCH_THREADS` is an
    /// error — a typo must not silently run a different experiment.
    pub fn from_env() -> Result<Cli, CliError> {
        let mut cli = Cli::default();
        if let Ok(s) = std::env::var("SEED") {
            cli.seed = parse_u64("SEED", &s)?;
        }
        if let Ok(s) = std::env::var("BENCH_THREADS") {
            cli.threads = parse_u64("BENCH_THREADS", &s)? as usize;
        }
        cli.quick = std::env::var("BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        Ok(cli)
    }

    /// Worker count the sweep driver should use: the explicit `--threads`,
    /// or the machine's available parallelism. [`crate::sweep::Sweep::run`]
    /// additionally clamps to the number of grid cells.
    pub fn worker_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

fn parse_u64(flag: &str, v: &str) -> Result<u64, CliError> {
    v.parse().map_err(|_| {
        CliError(format!(
            "invalid value `{v}` for {flag}: expected an unsigned integer"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Hermetic: parse on top of explicit defaults so an exported
    // SEED/BENCH_QUICK/BENCH_THREADS can't perturb the assertions.
    fn parse(args: &[&str]) -> Result<Parsed, CliError> {
        Cli::parse_from(Cli::default(), args.iter().copied())
    }

    #[test]
    fn defaults() {
        match parse(&[]).unwrap() {
            Parsed::Run(c) => {
                assert_eq!(c.seed, 42);
                assert!(!c.quick);
                assert_eq!(c.threads, 0);
                assert!(!c.json);
            }
            Parsed::Help => panic!("no help requested"),
        }
    }

    #[test]
    fn all_flags() {
        let Parsed::Run(c) =
            parse(&["--seed", "7", "--quick", "--threads", "3", "--json"]).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(c.seed, 7);
        assert!(c.quick);
        assert_eq!(c.threads, 3);
        assert!(c.json);
    }

    #[test]
    fn malformed_seed_is_rejected() {
        let err = parse(&["--seed", "foo"]).unwrap_err();
        assert!(err.0.contains("--seed"), "{err}");
        assert!(err.0.contains("foo"), "{err}");
    }

    #[test]
    fn dangling_seed_is_rejected() {
        let err = parse(&["--seed"]).unwrap_err();
        assert!(err.0.contains("requires a value"), "{err}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse(&["--sneed", "7"]).unwrap_err();
        assert!(err.0.contains("--sneed"), "{err}");
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap(), Parsed::Help);
        assert_eq!(parse(&["-h"]).unwrap(), Parsed::Help);
    }

    #[test]
    fn worker_threads_explicit_and_auto() {
        let cli = Cli {
            threads: 8,
            ..Cli::default()
        };
        assert_eq!(cli.worker_threads(), 8);
        let auto = Cli::default();
        assert!(auto.worker_threads() >= 1);
    }
}
