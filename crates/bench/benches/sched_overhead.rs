//! Figure 33 — scheduling overhead (§IX-H), as a Criterion micro-benchmark.
//!
//! Measures the two decision paths the paper times on real hardware:
//! shadow validation of an admission (<~0.4 ms at 8 nodes) and one
//! token-level scheduling decision (<~0.1 ms, scale-independent). Here the
//! *decision code itself* runs for real — this is the one experiment where
//! our absolute numbers are directly comparable to the paper's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec, NoiseModel};
use simcore::rng::SimRng;
use simcore::time::SimTime;
use slinfer::quantify::Quantifier;
use slinfer::shadow::{validate, InstView, ShadowReq};
use workload::request::Slo;

fn quantifier() -> Quantifier {
    Quantifier::profile(
        &ModelSpec::llama2_7b(),
        &HardwareSpec::a100_80g(),
        1.0,
        &AnalyticPerf::new(),
        &NoiseModel::off(),
        &mut SimRng::new(1),
        256,
    )
}

fn node_views(q: &Quantifier, instances: usize, batch: usize) -> Vec<InstView<'_>> {
    (0..instances)
        .map(|i| InstView {
            quant: q,
            reqs: (0..batch)
                .map(|k| ShadowReq {
                    anchor: SimTime::from_secs((i + k) as u64 % 7),
                    slo: Slo::paper(),
                    input_len: 1024,
                    tokens_done: 20 + k as u32,
                    prefill_len: 1024,
                    waiting: false,
                })
                .collect(),
        })
        .collect()
}

fn bench_shadow_validation(c: &mut Criterion) {
    let q = quantifier();
    let mut group = c.benchmark_group("shadow_validation");
    for &instances in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(instances),
            &instances,
            |b, &instances| {
                b.iter(|| {
                    let mut views = node_views(&q, instances, 8);
                    views[0].reqs.push(ShadowReq {
                        anchor: SimTime::from_secs(30),
                        slo: Slo::paper(),
                        input_len: 1024,
                        tokens_done: 0,
                        prefill_len: 1024,
                        waiting: true,
                    });
                    let cand = views[0].reqs.len() - 1;
                    black_box(validate(&mut views, 0, cand, SimTime::from_secs(30), 1.1))
                })
            },
        );
    }
    group.finish();
}

fn bench_token_level_decision(c: &mut Criterion) {
    let q = quantifier();
    let slo = Slo::paper();
    // A token-level decision scans every co-located request's headroom and
    // picks the minimum (Fig. 14). Model it over the same node state.
    let views = node_views(&q, 8, 8);
    c.bench_function("token_level_schedule", |b| {
        b.iter(|| {
            let now = 30.0f64;
            let mut best = f64::INFINITY;
            let mut pick = 0usize;
            for (vi, v) in views.iter().enumerate() {
                for r in &v.reqs {
                    let ttft = slo.ttft(r.input_len).as_secs_f64();
                    let h = r.anchor.as_secs_f64() + ttft + 0.25 * r.tokens_done as f64 - now;
                    if h < best {
                        best = h;
                        pick = vi;
                    }
                }
            }
            black_box((pick, best))
        })
    });
}

fn bench_quantifier_queries(c: &mut Criterion) {
    let q = quantifier();
    c.bench_function("quantifier_decode_estimate", |b| {
        b.iter(|| black_box(q.decode_s(black_box(17), black_box(1500))))
    });
}

criterion_group!(
    benches,
    bench_shadow_validation,
    bench_token_level_decision,
    bench_quantifier_queries
);
criterion_main!(benches);
