//! End-to-end integration: full SLINFER runs over generated traces,
//! checking request accounting, SLO bookkeeping, and the paper's headline
//! behaviours at small scale.

use bench::runner::{world_cfg, System};
use bench::zoo;
use cluster::WorldConfig;
use hwmodel::{HardwareKind, ModelSpec, NoiseModel};
use slinfer::SlinferConfig;
use workload::serverless::TraceSpec;

fn quiet(seed: u64) -> WorldConfig {
    WorldConfig {
        noise: NoiseModel::off(),
        ..world_cfg(seed)
    }
}

#[test]
fn every_request_is_resolved() {
    let trace = TraceSpec::azure_like(16, 11).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 16);
    let sys = System::Slinfer(SlinferConfig::default());
    let m = sys.run(&sys.cluster(2, 2, &models), models, quiet(11), &trace);
    assert_eq!(m.total(), trace.len());
    for r in &m.records {
        assert!(
            r.completed.is_some() || r.dropped,
            "request {:?} neither completed nor dropped",
            r.id
        );
        if let (Some(ft), Some(done)) = (r.first_token, r.completed) {
            assert!(ft <= done, "first token after completion");
            assert!(ft >= r.arrival, "first token before arrival");
        }
    }
}

#[test]
fn light_load_meets_slos_with_few_nodes() {
    let trace = TraceSpec::azure_like(8, 13).with_load_scale(0.5).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
    let sys = System::Slinfer(SlinferConfig::default());
    let m = sys.run(&sys.cluster(4, 4, &models), models, quiet(13), &trace);
    assert!(
        m.slo_rate() > 0.9,
        "light load should be easy: {}",
        m.slo_rate()
    );
    // SLINFER serves light 7B traffic mostly on CPUs (§V priority).
    assert!(m.cpu_decode_tokens > m.gpu_decode_tokens);
    let gpus = m.avg_nodes_used(HardwareKind::Gpu);
    assert!(gpus < 2.0, "GPU usage should stay low: {gpus}");
}

#[test]
fn capacity_gain_over_exclusive_allocation() {
    // The core claim at modest scale: same hardware, more SLO-met requests.
    let trace = TraceSpec::azure_like(48, 17).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 48);
    let run = |sys: System| {
        let c = sys.cluster(4, 4, &models);
        sys.run(&c, models.clone(), quiet(17), &trace).slo_met()
    };
    let sllm = run(System::Sllm);
    let slinfer = run(System::Slinfer(SlinferConfig::default()));
    assert!(
        slinfer > sllm,
        "SLINFER ({slinfer}) must beat exclusive allocation ({sllm})"
    );
}

#[test]
fn ablation_sharing_matters_most() {
    // §IX-C: disabling sharing costs the most SLO under multi-model load.
    let trace = TraceSpec::azure_like(32, 19).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 32);
    let run = |cfg: SlinferConfig| {
        let sys = System::Slinfer(cfg);
        let c = sys.cluster(2, 2, &models);
        sys.run(&c, models.clone(), quiet(19), &trace).slo_rate()
    };
    let full = run(SlinferConfig::default());
    let no_sharing = run(SlinferConfig {
        enable_sharing: false,
        ..SlinferConfig::default()
    });
    assert!(
        full > no_sharing,
        "sharing must increase attainment: full {full} vs w/o {no_sharing}"
    );
}

#[test]
fn grace_covers_cold_starts_only() {
    let trace = TraceSpec::azure_like(4, 23).with_load_scale(0.3).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 4);
    let sys = System::Slinfer(SlinferConfig::default());
    let m = sys.run(&sys.cluster(1, 1, &models), models, quiet(23), &trace);
    for r in &m.records {
        if r.cold_start {
            // 7B loads take ~0.7 s (CPU) or ~1 s (GPU); grace is bounded.
            assert!(
                r.grace.as_secs_f64() < 2.0,
                "grace {:?} exceeds any plausible load time",
                r.grace
            );
        } else {
            assert!(r.grace.is_zero(), "warm requests get no grace");
        }
    }
}
