//! Determinism regression suite: the simulator must be a pure function of
//! (trace, seed). Two runs with the same root seed produce byte-identical
//! `RunMetrics`; different seeds diverge.
//!
//! This property is what makes every figure binary reproducible and is
//! load-bearing for debugging: any failure here means nondeterministic
//! iteration order (e.g. hashing) or clock leakage crept into the stack.

use bench::runner::{world_cfg, System};
use bench::zoo;
use cluster::RunMetrics;
use hwmodel::ModelSpec;
use slinfer::SlinferConfig;
use workload::serverless::TraceSpec;

fn run_once(seed: u64) -> RunMetrics {
    // Noise stays ON (the default): determinism must hold because noise is
    // drawn from the seeded stream, not because noise is disabled.
    let trace = TraceSpec::azure_like(8, 5).with_load_scale(0.5).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
    let sys = System::Slinfer(SlinferConfig::default());
    sys.run(&sys.cluster(1, 1, &models), models, world_cfg(seed), &trace)
}

/// Byte-exact projection of everything a run measures. `Debug` for `f64`
/// prints the shortest round-trippable decimal, so equal strings imply
/// bit-equal values.
fn fingerprint(m: &mut RunMetrics) -> String {
    let ttft_p50 = m.ttft_summary().percentile(50.0);
    let ttft_p99 = m.ttft_summary().percentile(99.0);
    let batch_p50 = m.batch_sizes.percentile(50.0);
    let kv_p95 = m.kv_util.percentile(95.0);
    format!(
        "records={:?}\nusage={:?}\noom={}\ncold={}\nscale_ops={}\npreempt={}\nmigr={}\n\
         dropped={}\nshadow={}\ncpu_tok={}\ngpu_tok={}\nbusy=({:?},{:?})\n\
         blocked={:?}\nlifetime={:?}\nend={:?}\n\
         ttft_p50={:?}\nttft_p99={:?}\nbatch_p50={:?}\nkv_p95={:?}",
        m.records,
        m.usage_timeline,
        m.oom_incidents,
        m.cold_starts,
        m.scale_ops,
        m.preemptions,
        m.migrations,
        m.dropped,
        m.shadow_validations,
        m.cpu_decode_tokens,
        m.gpu_decode_tokens,
        m.cpu_node_busy_s,
        m.gpu_node_busy_s,
        m.scale_blocked_s,
        m.instance_lifetime_s,
        m.end_time,
        ttft_p50,
        ttft_p99,
        batch_p50,
        kv_p95,
    )
}

#[test]
fn same_seed_is_byte_identical() {
    let mut a = run_once(42);
    let mut b = run_once(42);
    assert_eq!(
        fingerprint(&mut a),
        fingerprint(&mut b),
        "two runs with the same root seed must produce byte-identical RunMetrics"
    );
}

#[test]
fn trace_generation_is_seeded() {
    let a = TraceSpec::azure_like(8, 5).generate();
    let b = TraceSpec::azure_like(8, 5).generate();
    assert_eq!(format!("{:?}", a.requests), format!("{:?}", b.requests));
    let c = TraceSpec::azure_like(8, 6).generate();
    assert_ne!(
        format!("{:?}", a.requests),
        format!("{:?}", c.requests),
        "different trace seeds must produce different traces"
    );
}

#[test]
fn different_seeds_diverge() {
    let mut a = run_once(1);
    let mut b = run_once(2);
    // The same trace served under a different world seed (noise + policy
    // tie-breaking streams) must not replay token-for-token.
    assert_ne!(
        fingerprint(&mut a),
        fingerprint(&mut b),
        "different world seeds should perturb the run"
    );
}
