//! Determinism regression suite: the simulator must be a pure function of
//! (trace, seed). Two runs with the same root seed produce byte-identical
//! `RunMetrics`; different seeds diverge; and the parallel sweep driver
//! must return exactly what a serial run returns.
//!
//! This property is what makes every figure binary reproducible and is
//! load-bearing for debugging: any failure here means nondeterministic
//! iteration order (e.g. hashing) or clock leakage crept into the stack.
//! (PR 2 caught exactly that: scale-op issue order leaked HashMap
//! randomness, so the same binary produced different SLINFER numbers in
//! different processes.)

use bench::runner::{world_cfg, System};
use bench::sweep::{Scenario, Sweep};
use bench::zoo;
use cluster::{ClusterSpec, NodeId, NodeSpec, RunMetrics};
use hwmodel::{HardwareSpec, ModelSpec};
use simcore::time::{SimDuration, SimTime};
use slinfer::SlinferConfig;
use workload::request::Slo;
use workload::serverless::TraceSpec;

/// A harder workload than the SLINFER smoke scenario: enough load on a
/// small cluster that baselines queue, drop, and retry — the paths where
/// iteration-order bugs hide.
fn run_system(sys: &System, cluster: &ClusterSpec, seed: u64) -> RunMetrics {
    // Noise stays ON (the default): determinism must hold because noise is
    // drawn from the seeded stream, not because noise is disabled.
    let trace = TraceSpec::azure_like(8, 5).with_load_scale(0.5).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
    sys.run(cluster, models, world_cfg(seed), &trace)
}

fn run_once(seed: u64) -> RunMetrics {
    let sys = System::Slinfer(SlinferConfig::default());
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
    run_system(&sys, &sys.cluster(1, 1, &models), seed)
}

/// Byte-exact projection of everything a run measures. `Debug` for `f64`
/// prints the shortest round-trippable decimal, so equal strings imply
/// bit-equal values.
fn fingerprint(m: &mut RunMetrics) -> String {
    let ttft_p50 = m.ttft_summary().percentile(50.0);
    let ttft_p99 = m.ttft_summary().percentile(99.0);
    let batch_p50 = m.batch_sizes.percentile(50.0);
    let kv_p95 = m.kv_util.percentile(95.0);
    format!(
        "records={:?}\nusage={:?}\noom={}\ncold={}\nscale_ops={}\npreempt={}\nmigr={}\n\
         dropped={}\nshadow={}\ncpu_tok={}\ngpu_tok={}\nbusy=({:?},{:?})\n\
         blocked={:?}\nlifetime={:?}\nend={:?}\n\
         ttft_p50={:?}\nttft_p99={:?}\nbatch_p50={:?}\nkv_p95={:?}",
        m.records,
        m.usage_timeline,
        m.oom_incidents,
        m.cold_starts,
        m.scale_ops,
        m.preemptions,
        m.migrations,
        m.dropped,
        m.shadow_validations,
        m.cpu_decode_tokens,
        m.gpu_decode_tokens,
        m.cpu_node_busy_s,
        m.gpu_node_busy_s,
        m.scale_blocked_s,
        m.instance_lifetime_s,
        m.end_time,
        ttft_p50,
        ttft_p99,
        batch_p50,
        kv_p95,
    )
}

#[test]
fn same_seed_is_byte_identical() {
    let mut a = run_once(42);
    let mut b = run_once(42);
    assert_eq!(
        fingerprint(&mut a),
        fingerprint(&mut b),
        "two runs with the same root seed must produce byte-identical RunMetrics"
    );
}

#[test]
fn trace_generation_is_seeded() {
    let a = TraceSpec::azure_like(8, 5).generate();
    let b = TraceSpec::azure_like(8, 5).generate();
    assert_eq!(format!("{:?}", a.requests), format!("{:?}", b.requests));
    let c = TraceSpec::azure_like(8, 6).generate();
    assert_ne!(
        format!("{:?}", a.requests),
        format!("{:?}", c.requests),
        "different trace seeds must produce different traces"
    );
}

#[test]
fn different_seeds_diverge() {
    let mut a = run_once(1);
    let mut b = run_once(2);
    // The same trace served under a different world seed (noise + policy
    // tie-breaking streams) must not replay token-for-token.
    assert_ne!(
        fingerprint(&mut a),
        fingerprint(&mut b),
        "different world seeds should perturb the run"
    );
}

#[test]
fn baseline_policies_replay_byte_identically() {
    // The whole `sllm` family: exclusive GPUs, CPU-preferring, and the
    // statically split variant (heterogeneous cluster form).
    for sys in [System::Sllm, System::SllmC, System::SllmCs] {
        let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
        let cluster = sys.cluster(1, 1, &models);
        let mut a = run_system(&sys, &cluster, 42);
        let mut b = run_system(&sys, &cluster, 42);
        assert_eq!(
            fingerprint(&mut a),
            fingerprint(&mut b),
            "{} must replay byte-identically",
            sys.name()
        );
    }
}

#[test]
fn statically_shared_cluster_replays_byte_identically() {
    // Half-node slots exercise the slot-share paths (concurrency limits,
    // per-slot grants) that whole-node runs never touch.
    let cluster = ClusterSpec::statically_shared(1, 2);
    for sys in [System::SllmCs, System::Slinfer(SlinferConfig::default())] {
        let mut a = run_system(&sys, &cluster, 42);
        let mut b = run_system(&sys, &cluster, 42);
        assert_eq!(
            fingerprint(&mut a),
            fingerprint(&mut b),
            "{} on a statically shared cluster must replay byte-identically",
            sys.name()
        );
    }
}

#[test]
fn pd_baselines_replay_byte_identically() {
    for sys in [System::PdSllmCs, System::PdSlinfer] {
        let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
        let cluster = sys.cluster(2, 2, &models);
        let mut a = run_system(&sys, &cluster, 42);
        let mut b = run_system(&sys, &cluster, 42);
        assert_eq!(
            fingerprint(&mut a),
            fingerprint(&mut b),
            "{} must replay byte-identically",
            sys.name()
        );
    }
}

/// An SLO-class-mix scenario: two azure-like segments interleaved, one
/// under the paper SLO and one under a relaxed class. New policy state
/// introduced for classes must keep same-seed replays byte-identical.
fn run_slo_mix(sys: &System, seed: u64) -> RunMetrics {
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
    let mut sc = Scenario::new(sys.cluster(1, 1, &models), models).config(world_cfg(seed));
    let relaxed = sc.slo_class(Slo::relaxed());
    let sc = sc
        .workload(TraceSpec::azure_like(8, 5).with_load_scale(0.3).generate())
        .classed_workload(
            TraceSpec::azure_like(8, 6).with_load_scale(0.3).generate(),
            relaxed,
        );
    sys.run_scenario(sc)
}

/// A churn scenario: one node drains mid-trace, another fails later. The
/// displaced-request handling (eviction order, re-placement, planner
/// cleanup) must not depend on hash-iteration order.
fn run_churn(sys: &System, seed: u64) -> RunMetrics {
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
    let sc = Scenario::new(sys.cluster(2, 2, &models), models)
        .config(world_cfg(seed))
        .workload(TraceSpec::azure_like(8, 5).with_load_scale(0.5).generate())
        .drain_at(SimTime::from_secs(300), NodeId(0))
        .fail_at(SimTime::from_secs(600), NodeId(2));
    sys.run_scenario(sc)
}

#[test]
fn slo_mix_runs_replay_byte_identically() {
    for sys in [System::SllmC, System::Slinfer(SlinferConfig::default())] {
        let mut a = run_slo_mix(&sys, 42);
        let mut b = run_slo_mix(&sys, 42);
        assert_eq!(
            fingerprint(&mut a),
            fingerprint(&mut b),
            "{} SLO-mix scenario must replay byte-identically",
            sys.name()
        );
        assert!(a.classes().len() == 2, "both classes must be present");
    }
}

/// FNV-1a over a fingerprint string. Stable across processes and
/// platforms — unlike `HashMap` iteration order, which randomizes per
/// process. Comparing against a *pinned* hash therefore catches exactly
/// the bug class a same-process replay-equality test cannot: state whose
/// iteration order leaks hash randomness produces a different fingerprint
/// in a different process, and every CI run is a different process.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Cross-process regression for the node-event path (the PR-2 bug class):
/// the drain/fail scenario sweeps SLINFER's parked/issued scale-op maps and
/// re-places displaced requests, so any hash-ordered policy state would
/// shift this fingerprint between processes. The pinned constants were
/// captured once; if a PR *intentionally* changes scheduling behaviour,
/// re-run with `--nocapture` and update them alongside the goldens.
#[test]
fn node_event_path_fingerprint_is_cross_process_stable() {
    let cases: [(System, u64); 2] = [
        (
            System::Slinfer(SlinferConfig::default()),
            0x7329_6ffd_43c6_acf1,
        ),
        (System::SllmC, 0x78f1_93b6_a8ac_3acc),
    ];
    for (sys, pinned) in cases {
        let mut m = run_churn(&sys, 42);
        let h = fnv1a(&fingerprint(&mut m));
        println!("{} node-event fingerprint hash: {h:#018x}", sys.name());
        assert_eq!(
            h,
            pinned,
            "{}'s drain/fail replay diverged from the cross-process pin — \
             either hash-ordered state leaked into the node-event path, or a \
             deliberate scheduling change needs this constant re-captured \
             (run with --nocapture and copy the printed hash)",
            sys.name()
        );
    }
}

#[test]
fn churn_runs_replay_byte_identically() {
    for sys in [
        System::Sllm,
        System::SllmC,
        System::Slinfer(SlinferConfig::default()),
    ] {
        let mut a = run_churn(&sys, 42);
        let mut b = run_churn(&sys, 42);
        assert_eq!(
            fingerprint(&mut a),
            fingerprint(&mut b),
            "{} drain/fail scenario must replay byte-identically",
            sys.name()
        );
        assert_eq!(a.node_drains, 1);
        assert_eq!(a.node_failures, 1);
    }
}

/// A tensor-parallel scenario: a multi-accelerator fleet serving TP=2
/// deployments under churn (one node fails mid-trace, displacing whole
/// slot groups). New TP state — slot-group claims, group busy-until
/// entries, TP-keyed quantifier profiles — must keep same-seed replays
/// byte-identical.
fn run_tp(sys: &System, seed: u64) -> RunMetrics {
    let models = zoo::replicas(&ModelSpec::llama2_13b().with_tp(2), 6);
    let fleet = ClusterSpec {
        nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4); 2],
    };
    let sc = Scenario::new(fleet, models)
        .config(world_cfg(seed))
        .workload(TraceSpec::azure_like(6, 5).with_load_scale(0.8).generate())
        .fail_at(SimTime::from_secs(400), NodeId(1));
    sys.run_scenario(sc)
}

#[test]
fn tp_runs_replay_byte_identically() {
    for sys in [System::Sllm, System::Slinfer(SlinferConfig::default())] {
        let mut a = run_tp(&sys, 42);
        let mut b = run_tp(&sys, 42);
        assert_eq!(
            fingerprint(&mut a),
            fingerprint(&mut b),
            "{} TP scenario must replay byte-identically",
            sys.name()
        );
        assert_eq!(a.node_failures, 1, "the TP fleet's node failure fired");
    }
}

/// The tp_scaling experiment's grid — TP degree as the sweep point — must
/// be bit-equal between a serial and a 2-worker run, mirroring the CI
/// cross-check on the full registry experiment.
#[test]
fn tp_sweep_threads_one_equals_two() {
    let build = || {
        Sweep::new()
            .points(vec![1u32, 2, 4])
            .systems(vec![
                System::Sllm,
                System::Slinfer(SlinferConfig::default()),
            ])
            .seeds(vec![42])
            .scenario(|cx| {
                let models = zoo::replicas(&ModelSpec::llama2_13b().with_tp(*cx.point), 4);
                let fleet = ClusterSpec {
                    nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4); 2],
                };
                Scenario::new(fleet, models)
                    .config(world_cfg(cx.seed))
                    .workload(TraceSpec::azure_like(4, 5).with_load_scale(0.5).generate())
            })
    };
    let mut serial = build().run(1);
    let mut two = build().run(2);
    for p in 0..3 {
        for s in 0..2 {
            assert_eq!(
                fingerprint(serial.metrics_mut(p, s, 0)),
                fingerprint(two.metrics_mut(p, s, 0)),
                "tp cell ({p},{s}) diverged between --threads 1 and 2"
            );
        }
    }
}

/// The scenario axes fan out across sweep workers exactly like plain runs:
/// a mixed-class, fault-injected grid must be bit-equal serial vs parallel.
#[test]
fn scenario_sweep_parallel_equals_serial() {
    let build = || {
        Sweep::new()
            .points(vec![false, true])
            .systems(vec![
                System::SllmC,
                System::Slinfer(SlinferConfig::default()),
            ])
            .seeds(vec![42])
            .scenario(|cx| {
                let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
                let mut sc = Scenario::new(cx.system.cluster(1, 2, &models), models)
                    .config(world_cfg(cx.seed));
                let relaxed = sc.slo_class(Slo::relaxed());
                let mut sc = sc
                    .workload(TraceSpec::azure_like(8, 5).with_load_scale(0.3).generate())
                    .classed_workload(
                        TraceSpec::azure_like(8, 6).with_load_scale(0.2).generate(),
                        relaxed,
                    );
                if *cx.point {
                    sc = sc.fail_at(SimTime::from_secs(400), NodeId(1));
                }
                sc
            })
    };
    let mut serial = build().run(1);
    let mut parallel = build().run(4);
    for p in 0..2 {
        for s in 0..2 {
            assert_eq!(
                fingerprint(serial.metrics_mut(p, s, 0)),
                fingerprint(parallel.metrics_mut(p, s, 0)),
                "scenario cell ({p},{s}) diverged between serial and parallel runs"
            );
        }
    }
}

/// The (point × system × seed) grid of a small end-to-end sweep, run
/// serially and on 4 workers: every cell must match bit-for-bit, in the
/// same axis order. This is the property that makes `--threads N` safe for
/// every figure binary.
#[test]
fn parallel_sweep_equals_serial_bit_for_bit() {
    let build = || {
        Sweep::new()
            .points(vec![4u32, 8])
            .systems(vec![
                System::Sllm,
                System::SllmCs,
                System::Slinfer(SlinferConfig::default()),
            ])
            .seeds(vec![42, 43])
            .scenario(|cx| {
                let models = zoo::replicas(&ModelSpec::llama2_7b(), *cx.point as usize);
                Scenario::new(cx.system.cluster(1, 1, &models), models)
                    .config(world_cfg(cx.seed))
                    .workload(
                        TraceSpec::azure_like(*cx.point, 5)
                            .with_load_scale(0.3)
                            .generate(),
                    )
            })
    };
    let mut serial = build().run(1);
    let mut parallel = build().run(4);
    for p in 0..2 {
        for s in 0..3 {
            for k in 0..2 {
                assert_eq!(
                    fingerprint(serial.metrics_mut(p, s, k)),
                    fingerprint(parallel.metrics_mut(p, s, k)),
                    "cell ({p},{s},{k}) diverged between serial and parallel runs"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tiered checkpoint storage (the cold_start experiment's configuration)
// ---------------------------------------------------------------------

/// The shared fingerprint extended with the per-tier cold-start
/// accounting — tier residency is the state under test here, so the LRU
/// promote/demote/drop machinery and the loading-channel schedule must
/// all be captured.
fn cold_fingerprint(m: &mut RunMetrics) -> String {
    let tiers = format!(
        "\ncold_tiers={:?}\ncold_secs={:?}",
        m.cold_tier_loads, m.cold_tier_seconds
    );
    let mut s = fingerprint(m);
    s.push_str(&tiers);
    s
}

/// A cache-constrained scenario with a mid-trace node failure: per-node
/// DRAM/SSD LRU caches churn under a zoo bigger than they can hold, the
/// shared loading channel contends, and the failing node drops its cache
/// and its in-flight loads (their completion events go stale). Every bit
/// of that state machine must be deterministic.
fn run_cold(sys: &System, seed: u64) -> RunMetrics {
    const GB: u64 = 1_000_000_000;
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
    let sc = Scenario::new(ClusterSpec::heterogeneous(0, 2), models)
        .config(world_cfg(seed))
        .checkpoints(cluster::CheckpointConfig::tiered(30 * GB, Some(60 * GB)))
        .workload(TraceSpec::azure_like(8, 5).with_load_scale(0.5).generate())
        .fail_at(SimTime::from_secs(300), NodeId(0));
    sys.run_scenario(sc)
}

#[test]
fn cold_start_tiered_runs_replay_byte_identically() {
    for sys in [System::Sllm, System::Slinfer(SlinferConfig::default())] {
        let mut a = run_cold(&sys, 42);
        let mut b = run_cold(&sys, 42);
        assert_eq!(
            cold_fingerprint(&mut a),
            cold_fingerprint(&mut b),
            "{} tiered cold-start scenario must replay byte-identically",
            sys.name()
        );
        assert_eq!(a.node_failures, 1);
        let ssd_or_remote = a.cold_tier_loads[2] + a.cold_tier_loads[3];
        assert!(ssd_or_remote > 0, "the cache constraint must bite");
    }
}

/// Cross-process pin for the tiered cold-start path, NodeFail included —
/// the cache state machine (LRU recency lists, loading-channel epochs)
/// is new policy-visible state, and hash-ordered leaks in it would only
/// show up across processes (see the node-event pin above). Captured
/// once; re-capture with --nocapture on deliberate scheduling changes.
#[test]
fn cold_start_fingerprint_is_cross_process_stable() {
    let cases: [(System, u64); 2] = [
        (
            System::Slinfer(SlinferConfig::default()),
            0xb59f_cb87_a75d_cab8,
        ),
        (System::Sllm, 0xbdc5_7069_6832_f33f),
    ];
    for (sys, pinned) in cases {
        let mut m = run_cold(&sys, 42);
        let h = fnv1a(&cold_fingerprint(&mut m));
        println!("{} cold-start fingerprint hash: {h:#018x}", sys.name());
        assert_eq!(
            h,
            pinned,
            "{}'s tiered cold-start replay diverged from the cross-process \
             pin — either hash-ordered state leaked into the checkpoint \
             cache / loading channel, or a deliberate scheduling change \
             needs this constant re-captured (run with --nocapture and \
             copy the printed hash)",
            sys.name()
        );
    }
}

/// The cold_start experiment's grid — cache capacity as the sweep point —
/// must be bit-equal between a serial and a 2-worker run, mirroring the
/// registry-derived CI cross-check.
#[test]
fn cold_start_sweep_threads_one_equals_two() {
    const GB: u64 = 1_000_000_000;
    let build = || {
        Sweep::new()
            .points(vec![None, Some(15u64), Some(60)])
            .systems(vec![
                System::Sllm,
                System::Slinfer(SlinferConfig::default()),
            ])
            .seeds(vec![42])
            .scenario(|cx| {
                let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
                let ckpt = match cx.point {
                    None => cluster::CheckpointConfig::flat(),
                    Some(gb) => cluster::CheckpointConfig::tiered(gb * GB, Some(2 * gb * GB)),
                };
                Scenario::new(ClusterSpec::heterogeneous(0, 2), models)
                    .config(world_cfg(cx.seed))
                    .checkpoints(ckpt)
                    .workload(TraceSpec::azure_like(8, 5).with_load_scale(0.4).generate())
            })
    };
    let mut serial = build().run(1);
    let mut two = build().run(2);
    for p in 0..3 {
        for s in 0..2 {
            assert_eq!(
                cold_fingerprint(serial.metrics_mut(p, s, 0)),
                cold_fingerprint(two.metrics_mut(p, s, 0)),
                "cold-start cell ({p},{s}) diverged between --threads 1 and 2"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Cross-node checkpoint distribution (the scale_burst configuration)
// ---------------------------------------------------------------------

/// The tiered fingerprint extended with the fabric accounting — peer
/// fetches, relay attachment, and failure reroutes are the new state
/// under test.
fn dist_fingerprint(m: &mut RunMetrics) -> String {
    let extra = format!(
        "\npeer={}\npeer_secs={:?}\nrelays={}\nreroutes={}",
        m.peer_fetches, m.peer_fetch_seconds, m.multicast_relays, m.transfer_reroutes
    );
    let mut s = cold_fingerprint(m);
    s.push_str(&extra);
    s
}

/// The scale_burst-style staged trace: one pre-warm request parks a DRAM
/// copy, then a flash crowd forces the policy to fan the model out.
fn dist_burst_trace(burst: u32) -> workload::request::Trace {
    use workload::request::{ModelId, Request, RequestId, SloClass, Trace};
    let mut reqs = Vec::with_capacity(burst as usize + 1);
    let mut push = |arrival_s: f64, input_len: u32, output_len: u32| {
        let id = RequestId(reqs.len() as u64);
        reqs.push(Request {
            id,
            model: ModelId(0),
            arrival: SimTime::from_secs_f64(arrival_s),
            input_len,
            output_len,
            class: SloClass(0),
            session: Default::default(),
        });
    };
    push(1.0, 256, 64);
    for i in 0..burst {
        push(60.0 + 0.02 * f64::from(i), 3072, 256);
    }
    Trace::new(reqs, 1, SimDuration::from_secs(300))
}

/// A flash crowd under full distribution with the *seed node* failing
/// mid-transfer: the in-flight fabric stream sourced from the dead node
/// must reroute (to a ready replica, or a registry resume) and the whole
/// run must stay a pure function of the seed.
fn run_dist_burst(sys: &System, seed: u64) -> RunMetrics {
    const GB: u64 = 1_000_000_000;
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 1);
    let sc = Scenario::new(ClusterSpec::heterogeneous(0, 6), models)
        .config(world_cfg(seed))
        .checkpoints(cluster::CheckpointConfig::tiered(30 * GB, Some(0)))
        .dist(cluster::DistConfig::full())
        .workload(dist_burst_trace(96))
        .fail_at(SimTime::from_secs_f64(60.9), NodeId(0));
    sys.run_scenario(sc)
}

#[test]
fn dist_burst_replays_byte_identically() {
    for sys in [System::Sllm, System::Slinfer(SlinferConfig::default())] {
        let mut a = run_dist_burst(&sys, 42);
        let mut b = run_dist_burst(&sys, 42);
        assert_eq!(
            dist_fingerprint(&mut a),
            dist_fingerprint(&mut b),
            "{} distribution burst must replay byte-identically",
            sys.name()
        );
        assert_eq!(a.node_failures, 1);
        assert!(a.peer_fetches > 0, "the burst must fan out over the fabric");
        assert!(
            a.transfer_reroutes > 0,
            "the seed-node failure must catch a transfer mid-flight"
        );
    }
}

/// Cross-process pin for the distribution path, source-node failure
/// included — the directory, the cross-channel loads, and the reroute
/// planner are new policy-visible state; hash-ordered leaks in them only
/// show up across processes (see the node-event pin above). Captured
/// once; re-capture with --nocapture on deliberate scheduling changes.
#[test]
fn dist_fingerprint_is_cross_process_stable() {
    let cases: [(System, u64); 2] = [
        (
            System::Slinfer(SlinferConfig::default()),
            0x3e1d_4add_d262_14b1,
        ),
        (System::Sllm, 0x0096_fa1d_4216_32ca),
    ];
    for (sys, pinned) in cases {
        let mut m = run_dist_burst(&sys, 42);
        let h = fnv1a(&dist_fingerprint(&mut m));
        println!("{} dist fingerprint hash: {h:#018x}", sys.name());
        assert_eq!(
            h,
            pinned,
            "{}'s distribution burst diverged from the cross-process pin — \
             either hash-ordered state leaked into the replica directory / \
             fabric transfer path, or a deliberate scheduling change needs \
             this constant re-captured (run with --nocapture and copy the \
             printed hash)",
            sys.name()
        );
    }
}

// ---------------------------------------------------------------------
// Multi-turn sessions (the session_reuse configuration)
// ---------------------------------------------------------------------

/// The distribution fingerprint extended with the session accounting —
/// parked-prefix hits, KV migrations, and the warm/cold TTFT split are
/// the new state under test.
fn session_fingerprint(m: &mut RunMetrics) -> String {
    let warm_p50 = m.warm_ttft_summary().percentile(50.0);
    let cold_p50 = m.cold_ttft_summary().percentile(50.0);
    let extra = format!(
        "\nprefix_hits={}\nprefix_tokens={}\nkv_migr={}\nkv_migr_bytes={}\n\
         warm_p50={warm_p50:?}\ncold_p50={cold_p50:?}",
        m.prefix_hits(),
        m.prefix_hit_tokens,
        m.kv_migrations,
        m.kv_migration_bytes
    );
    let mut s = dist_fingerprint(m);
    s.push_str(&extra);
    s
}

/// A chat-like multi-turn scenario with affinity and KV migration on, and
/// a node failing mid-trace: parked session KV on the dead node is lost
/// with it, later turns of those sessions re-prefill cold elsewhere, and
/// the stale `session_home` entries must be skipped deterministically.
fn run_sessions(sys: &System, stickiness: f64, seed: u64) -> RunMetrics {
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 4);
    // Keep-alive must outlast the ~30 s think gaps or home instances
    // unload between turns and no prefix is ever parked long enough to hit
    // (matches the session_reuse experiment's configuration).
    let mut cfg = world_cfg(seed);
    cfg.keep_alive = SimDuration::from_secs(600);
    let sc = Scenario::new(ClusterSpec::heterogeneous(0, 4), models)
        .config(cfg)
        .sessions(cluster::SessionConfig::reuse(stickiness))
        .workload(workload::SessionSpec::chat_like(4, 5).generate())
        .fail_at(SimTime::from_secs(900), NodeId(1));
    sys.run_scenario(sc)
}

#[test]
fn session_runs_replay_byte_identically() {
    for sys in [System::Sllm, System::Slinfer(SlinferConfig::default())] {
        let mut a = run_sessions(&sys, 1.0, 42);
        let mut b = run_sessions(&sys, 1.0, 42);
        assert_eq!(
            session_fingerprint(&mut a),
            session_fingerprint(&mut b),
            "{} session scenario must replay byte-identically",
            sys.name()
        );
        assert_eq!(a.node_failures, 1, "the mid-session node failure fired");
        assert!(
            a.prefix_hit_tokens > 0,
            "follow-up turns must hit parked prefixes"
        );
    }
}

/// Cross-process pin for the session path, mid-session NodeFail included —
/// the parked-KV maps, the session-home directory, and the affinity
/// fast path are new policy-visible state; hash-ordered leaks in them
/// only show up across processes (see the node-event pin above). Captured
/// once; re-capture with --nocapture on deliberate scheduling changes.
#[test]
fn session_fingerprint_is_cross_process_stable() {
    let cases: [(System, u64); 2] = [
        (
            System::Slinfer(SlinferConfig::default()),
            0x4911_5f6b_fe69_0dfa,
        ),
        (System::Sllm, 0x1ffd_7e55_6667_3dcb),
    ];
    for (sys, pinned) in cases {
        let mut m = run_sessions(&sys, 1.0, 42);
        let h = fnv1a(&session_fingerprint(&mut m));
        println!("{} session fingerprint hash: {h:#018x}", sys.name());
        assert_eq!(
            h,
            pinned,
            "{}'s session replay diverged from the cross-process pin — \
             either hash-ordered state leaked into the parked-KV / affinity \
             path, or a deliberate scheduling change needs this constant \
             re-captured (run with --nocapture and copy the printed hash)",
            sys.name()
        );
    }
}

/// The session_reuse experiment's stickiness axis — off → full affinity —
/// must be bit-equal between a serial and a 2-worker run, mirroring the
/// registry-derived CI cross-check.
#[test]
fn session_sweep_threads_one_equals_two() {
    let build = || {
        Sweep::new()
            .points(vec![None, Some(0.0), Some(1.0)])
            .systems(vec![
                System::Sllm,
                System::Slinfer(SlinferConfig::default()),
            ])
            .seeds(vec![42])
            .scenario(|cx| {
                let sessions = match cx.point {
                    None => cluster::SessionConfig::off(),
                    Some(s) => cluster::SessionConfig::reuse(*s),
                };
                let models = zoo::replicas(&ModelSpec::llama2_7b(), 4);
                let mut cfg = world_cfg(cx.seed);
                cfg.keep_alive = SimDuration::from_secs(600);
                Scenario::new(ClusterSpec::heterogeneous(0, 4), models)
                    .config(cfg)
                    .sessions(sessions)
                    .workload(workload::SessionSpec::chat_like(4, 5).generate())
            })
    };
    let mut serial = build().run(1);
    let mut two = build().run(2);
    for p in 0..3 {
        for s in 0..2 {
            assert_eq!(
                session_fingerprint(serial.metrics_mut(p, s, 0)),
                session_fingerprint(two.metrics_mut(p, s, 0)),
                "session cell ({p},{s}) diverged between --threads 1 and 2"
            );
        }
    }
}

/// A sessionful trace under `SessionConfig::off()` must behave exactly
/// like plain independent requests: nothing parks, nothing migrates, and
/// no record reports a cached prefix. (The converse — sessionless configs
/// replaying pre-session runs byte-for-byte — is what the untouched
/// goldens prove.)
#[test]
fn sessions_off_is_inert_on_session_traces() {
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 4);
    let sc = Scenario::new(ClusterSpec::heterogeneous(0, 4), models)
        .config(world_cfg(42))
        .workload(workload::SessionSpec::chat_like(4, 5).generate());
    let m = System::Slinfer(SlinferConfig::default()).run_scenario(sc);
    assert_eq!(m.prefix_hit_tokens, 0);
    assert_eq!(m.kv_migrations, 0);
    assert_eq!(m.prefix_hits(), 0);
    assert!(m.total() > 0);
}

/// The scale_burst experiment's mode axis — off/peer/full distribution —
/// must be bit-equal between a serial and a 2-worker run, mirroring the
/// registry-derived CI cross-check.
#[test]
fn dist_sweep_threads_one_equals_two() {
    const GB: u64 = 1_000_000_000;
    let build = || {
        Sweep::new()
            .points(vec![
                cluster::DistConfig::off(),
                cluster::DistConfig::peer(),
                cluster::DistConfig::full(),
            ])
            .systems(vec![
                System::Sllm,
                System::Slinfer(SlinferConfig::default()),
            ])
            .seeds(vec![42])
            .scenario(|cx| {
                let models = zoo::replicas(&ModelSpec::llama2_7b(), 1);
                Scenario::new(ClusterSpec::heterogeneous(0, 6), models)
                    .config(world_cfg(cx.seed))
                    .checkpoints(cluster::CheckpointConfig::tiered(30 * GB, Some(0)))
                    .dist(*cx.point)
                    .workload(dist_burst_trace(96))
            })
    };
    let mut serial = build().run(1);
    let mut two = build().run(2);
    for p in 0..3 {
        for s in 0..2 {
            assert_eq!(
                dist_fingerprint(serial.metrics_mut(p, s, 0)),
                dist_fingerprint(two.metrics_mut(p, s, 0)),
                "dist cell ({p},{s}) diverged between --threads 1 and 2"
            );
        }
    }
}
