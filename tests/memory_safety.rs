//! Memory-subsystem integration: the §VII guarantees under churn — no
//! physical OOM, sound ledgers, reservation-station liveness.

use bench::runner::{world_cfg, System};
use bench::zoo;
use cluster::{ClusterSpec, NodeId, Scenario, Simulation, World, WorldConfig};
use hwmodel::{ModelSpec, NoiseModel};
use simcore::time::SimTime;
use slinfer::{Slinfer, SlinferConfig};
use workload::request::{ModelId, Request, RequestId, SloClass};
use workload::serverless::TraceSpec;

fn quiet(seed: u64) -> WorldConfig {
    WorldConfig {
        noise: NoiseModel::off(),
        ..world_cfg(seed)
    }
}

#[test]
fn no_oom_incidents_across_seeds_and_scales() {
    for seed in [1u64, 2, 3] {
        for n in [8u32, 24, 48] {
            let trace = TraceSpec::azure_like(n, seed).generate();
            let models = zoo::replicas(&ModelSpec::llama2_7b(), n as usize);
            let sys = System::Slinfer(SlinferConfig::default());
            let m = sys.run(&sys.cluster(2, 2, &models), models, quiet(seed), &trace);
            assert_eq!(
                m.oom_incidents, 0,
                "seed {seed}, {n} models: orchestrator let an op overflow"
            );
        }
    }
}

#[test]
fn watermark_zero_scales_far_more_often() {
    // Fig 31's mechanism: disabling the watermark multiplies rescales.
    let trace = TraceSpec::azure_like(24, 5).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 24);
    let run = |w: f64| {
        let sys = System::Slinfer(SlinferConfig::default().with_watermark(w));
        let c = sys.cluster(2, 2, &models);
        sys.run(&c, models.clone(), quiet(5), &trace)
    };
    let none = run(0.0);
    let paper = run(0.25);
    assert!(
        none.scale_ops > paper.scale_ops,
        "w=0 ({}) should rescale more than w=25% ({})",
        none.scale_ops,
        paper.scale_ops
    );
    assert!(none.scaling_overhead_fraction() >= paper.scaling_overhead_fraction());
}

#[test]
fn world_ledger_enforces_physical_capacity() {
    // Direct World-level check: you cannot commit past a node's memory.
    let cluster = ClusterSpec::heterogeneous(0, 1);
    let mut w = World::new(&cluster, vec![ModelSpec::llama2_7b()], quiet(1));
    let gb = 1_000_000_000u64;
    // 5 × (13.5 weights + 2 KV) ≈ 77.5 GB fits; the 6th (93 GB) must fail.
    let mut created = 0;
    for _ in 0..6 {
        match w.create_instance(ModelId(0), NodeId(0), 0, 2 * gb) {
            Ok(_) => created += 1,
            Err(e) => {
                assert!(matches!(e, cluster::MemError::WouldOom { .. }));
            }
        }
    }
    assert_eq!(created, 5);
    assert!(w.node_available_bytes(NodeId(0)) < 16 * gb);
    assert_eq!(w.metrics.oom_incidents, 1, "the rejected op is recorded");
}

#[test]
fn kv_underestimation_recovers_via_eviction_or_scaling() {
    // Long outputs blow past the average-based Eq. 2 estimate: the system
    // must recover (scale up or migrate), never stall.
    let reqs: Vec<Request> = (0..6u64)
        .map(|i| Request {
            id: RequestId(i),
            model: ModelId((i % 2) as u32),
            arrival: SimTime::from_millis(i * 200),
            input_len: 2048,
            output_len: 1500, // far above the 256-token prior
            class: SloClass::default(),
            session: Default::default(),
        })
        .collect();
    let trace = workload::Trace::new(reqs, 2, simcore::time::SimDuration::from_secs(60));
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 2);
    let sim = Simulation::new(
        &ClusterSpec::heterogeneous(1, 1),
        models,
        quiet(3),
        Slinfer::new(SlinferConfig::default()),
    );
    let m = sim.run(&trace);
    for r in &m.records {
        assert!(
            r.completed.is_some() || r.dropped,
            "{:?} stalled on KV underestimation",
            r.id
        );
    }
    assert_eq!(m.oom_incidents, 0);
    // All six complete: the cluster has plenty of physical room.
    assert!(m.records.iter().filter(|r| r.completed.is_some()).count() >= 5);
}

#[test]
fn high_pressure_overload_with_node_failure_converges() {
    // The ROADMAP's memory-subsystem stress scenario: a model zoo far
    // beyond cluster capacity (24 × 7B ≈ 17 weights' worth of node memory
    // on 1 CPU + 1 GPU) under a 4×-load azure-like burst, with the GPU node
    // hard-failing mid-burst. The reservation station and consolidator
    // must keep interacting soundly under this churn:
    //
    // - the run converges (no stalled request keeps the event loop pinned
    //   to the drain-grace hard stop),
    // - every request resolves (completed or dropped),
    // - the optimistic/pessimistic split never lets an op overflow a node
    //   (zero OOM incidents), even while failure-displaced requests are
    //   re-placed against budgets that just lost a whole node.
    let n_models = 24u32;
    let trace = TraceSpec::azure_like(n_models, 11)
        .with_load_scale(4.0)
        .generate()
        .truncated(SimTime::from_secs(420));
    let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);
    let sys = System::Slinfer(SlinferConfig::default());
    let sc = Scenario::new(sys.cluster(1, 1, &models), models)
        .config(quiet(11))
        .workload(trace.clone())
        .fail_at(SimTime::from_secs(120), NodeId(1));
    let m = sys.run_scenario(sc);

    assert_eq!(m.node_failures, 1);
    assert_eq!(
        m.oom_incidents, 0,
        "orchestrator must stay sound through failure-induced churn"
    );
    for r in &m.records {
        assert!(
            r.completed.is_some() || r.dropped,
            "request {:?} stalled under pressure",
            r.id
        );
    }
    // Convergence: the loop must go quiet well before the drain-grace
    // hard stop (last arrival + 900 s) — a stalled request would pin it.
    let last_arrival = trace.requests.last().unwrap().arrival;
    let hard_stop = last_arrival + simcore::time::SimDuration::from_secs(900);
    assert!(
        m.end_time < hard_stop,
        "run should converge before the hard stop: ended {:?} vs {:?}",
        m.end_time,
        hard_stop
    );
    // The overloaded remnant (one CPU node) must still do useful work.
    assert!(m.slo_met() > 0, "some requests must still be served");
    assert!(m.dropped > 0, "overload must shed load, not queue forever");
}

#[test]
fn admit_during_scale_does_not_deadlock() {
    // A burst into one instance while its grant is mid-flux exercises the
    // coalescing path (wanted-target bumping).
    let reqs: Vec<Request> = (0..20u64)
        .map(|i| Request {
            id: RequestId(i),
            model: ModelId(0),
            arrival: SimTime::from_millis(i * 50),
            input_len: 1024,
            output_len: 64,
            class: SloClass::default(),
            session: Default::default(),
        })
        .collect();
    let trace = workload::Trace::new(reqs, 1, simcore::time::SimDuration::from_secs(60));
    let sim = Simulation::new(
        &ClusterSpec::heterogeneous(1, 1),
        vec![ModelSpec::llama2_7b()],
        quiet(9),
        Slinfer::new(SlinferConfig::default()),
    );
    let m = sim.run(&trace);
    let completed = m.records.iter().filter(|r| r.completed.is_some()).count();
    assert!(completed >= 18, "burst mostly served, got {completed}");
    assert_eq!(m.oom_incidents, 0);
}
