//! Property-based integration: invariants over randomized traces.
//!
//! Uses proptest to fuzz small workloads through the full SLINFER stack,
//! checking the accounting invariants that must hold for *any* input:
//! request conservation, token monotonicity, deterministic replay, and a
//! sound memory ledger.

use proptest::prelude::*;

use cluster::{ClusterSpec, Simulation, WorldConfig};
use hwmodel::{ModelSpec, NoiseModel};
use simcore::time::{SimDuration, SimTime};
use slinfer::{Slinfer, SlinferConfig};
use workload::request::{ModelId, Request, RequestId, SloClass, Trace};

fn arb_request(n_models: u32) -> impl Strategy<Value = (u64, u32, u32, u32)> {
    // (arrival_ms ≤ 60 s, model, input 16–4096, output 1–256)
    (0u64..60_000, 0u32..n_models, 16u32..4096, 1u32..256)
}

fn build_trace(raw: Vec<(u64, u32, u32, u32)>, n_models: u32) -> Trace {
    let reqs: Vec<Request> = raw
        .into_iter()
        .map(|(ms, m, inp, out)| Request {
            id: RequestId(0), // assigned densely after the arrival sort
            model: ModelId(m),
            arrival: SimTime::from_millis(ms),
            input_len: inp,
            output_len: out,
            class: SloClass::default(),
            session: Default::default(),
        })
        .collect();
    let mut trace = Trace::new(reqs, n_models, SimDuration::from_secs(60));
    for (i, r) in trace.requests.iter_mut().enumerate() {
        r.id = RequestId(i as u64);
    }
    trace
}

fn run(trace: &Trace, n_models: u32, seed: u64) -> cluster::RunMetrics {
    let models: Vec<ModelSpec> = (0..n_models as usize)
        .map(|i| ModelSpec::llama2_7b().replica(i))
        .collect();
    let cfg = WorldConfig {
        seed,
        noise: NoiseModel::new(0.05),
        ..WorldConfig::default()
    };
    Simulation::new(
        &ClusterSpec::heterogeneous(1, 1),
        models,
        cfg,
        Slinfer::new(SlinferConfig::default()),
    )
    .run(trace)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn every_request_conserved(raw in prop::collection::vec(arb_request(4), 1..40)) {
        let trace = build_trace(raw, 4);
        let m = run(&trace, 4, 7);
        prop_assert_eq!(m.total(), trace.len());
        let resolved = m.records.iter()
            .filter(|r| r.completed.is_some() || r.dropped)
            .count();
        prop_assert_eq!(resolved, trace.len(), "no request may vanish or stall");
        // Dropped and completed are mutually exclusive.
        for r in &m.records {
            prop_assert!(!(r.dropped && r.completed.is_some()));
        }
    }

    #[test]
    fn memory_ledger_never_overflows(raw in prop::collection::vec(arb_request(6), 1..60)) {
        let trace = build_trace(raw, 6);
        let m = run(&trace, 6, 11);
        prop_assert_eq!(m.oom_incidents, 0, "orchestrator must prevent OOM attempts");
    }

    #[test]
    fn token_accounting_consistent(raw in prop::collection::vec(arb_request(3), 1..30)) {
        let trace = build_trace(raw, 3);
        let m = run(&trace, 3, 13);
        // Completed requests produced exactly output_len tokens; the sum of
        // decode tokens across kinds covers at least those.
        let expected: u64 = m.records.iter()
            .filter(|r| r.completed.is_some())
            .map(|r| r.output_len as u64)
            .sum();
        prop_assert!(m.cpu_decode_tokens + m.gpu_decode_tokens >= expected);
        for r in &m.records {
            if let Some(ft) = r.first_token {
                prop_assert!(ft >= r.arrival);
            }
        }
    }

    #[test]
    fn replay_is_deterministic(raw in prop::collection::vec(arb_request(3), 1..25)) {
        let trace = build_trace(raw, 3);
        let a = run(&trace, 3, 17);
        let b = run(&trace, 3, 17);
        prop_assert_eq!(a.slo_met(), b.slo_met());
        prop_assert_eq!(a.dropped, b.dropped);
        prop_assert_eq!(a.scale_ops, b.scale_ops);
        let fa: Vec<_> = a.records.iter().map(|r| r.first_token).collect();
        let fb: Vec<_> = b.records.iter().map(|r| r.first_token).collect();
        prop_assert_eq!(fa, fb);
    }
}
