//! Cross-system integration: the qualitative orderings the paper's
//! evaluation establishes must hold at test scale across all serving
//! systems run through identical machinery.

use bench::runner::{world_cfg, System};
use bench::zoo;
use cluster::WorldConfig;
use hwmodel::{HardwareKind, ModelSpec, NoiseModel};
use workload::serverless::TraceSpec;

fn quiet(seed: u64) -> WorldConfig {
    WorldConfig {
        noise: NoiseModel::off(),
        ..world_cfg(seed)
    }
}

#[test]
fn sllm_never_touches_cpus_but_sllm_c_does() {
    let trace = TraceSpec::azure_like(8, 3).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
    let run = |sys: System| {
        let c = sys.cluster(2, 2, &models);
        sys.run(&c, models.clone(), quiet(3), &trace)
    };
    let a = run(System::Sllm);
    assert_eq!(a.cpu_decode_tokens, 0);
    assert_eq!(a.avg_nodes_used(HardwareKind::CpuAccel), 0.0);
    let b = run(System::SllmC);
    assert!(b.cpu_decode_tokens > 0, "sllm+c must use (and prefer) CPUs");
}

#[test]
fn every_system_resolves_every_request() {
    let trace = TraceSpec::azure_like(12, 5).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 12);
    for sys in [
        System::Sllm,
        System::SllmC,
        System::SllmCs,
        System::Slinfer(Default::default()),
        System::PdSllmCs,
        System::PdSlinfer,
    ] {
        let c = sys.cluster(2, 2, &models);
        let m = sys.run(&c, models.clone(), quiet(5), &trace);
        let unresolved = m
            .records
            .iter()
            .filter(|r| r.completed.is_none() && !r.dropped)
            .count();
        assert_eq!(
            unresolved,
            0,
            "{}: {unresolved} unresolved requests",
            sys.name()
        );
        assert_eq!(m.total(), trace.len());
    }
}

#[test]
fn pd_disaggregation_costs_resources() {
    // Table III's robust directional claims: disaggregation multiplies
    // instance churn (separate prefill/decode pools) and consumes at least
    // as many GPU nodes. (The SLO gap needs the full 4+4/128-model load —
    // see the tab3_pd_disagg experiment — and is not asserted here.)
    let trace = TraceSpec::azure_like(64, 7).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 64);
    let run = |sys: System| {
        let c = sys.cluster(4, 4, &models);
        sys.run(&c, models.clone(), quiet(7), &trace)
    };
    let agg = run(System::Slinfer(Default::default()));
    let pd = run(System::PdSlinfer);
    assert!(
        pd.cold_starts > agg.cold_starts,
        "PD must churn more instances: {} vs {}",
        pd.cold_starts,
        agg.cold_starts
    );
    assert!(
        pd.avg_nodes_used(HardwareKind::Gpu) >= agg.avg_nodes_used(HardwareKind::Gpu) - 0.1,
        "PD must not save GPU nodes: {} vs {}",
        pd.avg_nodes_used(HardwareKind::Gpu),
        agg.avg_nodes_used(HardwareKind::Gpu)
    );
    assert!(
        pd.slo_met() <= agg.slo_met(),
        "at Table-III load PD must not beat aggregated: {} vs {}",
        pd.slo_met(),
        agg.slo_met()
    );
}

#[test]
fn static_sharing_beats_exclusive_under_many_models() {
    // §IX-B at 3B scale: with many small models, even static sharing beats
    // exclusive allocation — and SLINFER beats both.
    let trace = TraceSpec::azure_like(48, 9).generate();
    let models = zoo::replicas(&ModelSpec::llama3_2_3b(), 48);
    let run = |sys: System| {
        let c = sys.cluster(2, 2, &models);
        sys.run(&c, models.clone(), quiet(9), &trace).slo_met()
    };
    let excl = run(System::Sllm);
    let slinfer = run(System::Slinfer(Default::default()));
    assert!(slinfer > excl, "SLINFER {slinfer} vs sllm {excl}");
}

#[test]
fn determinism_across_all_systems() {
    let trace = TraceSpec::azure_like(8, 21).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 8);
    for sys in System::paper_lineup() {
        let run = || {
            let c = sys.cluster(2, 2, &models);
            sys.run(&c, models.clone(), world_cfg(21), &trace)
        };
        let a = run();
        let b = run();
        assert_eq!(a.slo_met(), b.slo_met(), "{} not deterministic", sys.name());
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(a.gpu_decode_tokens, b.gpu_decode_tokens);
    }
}
