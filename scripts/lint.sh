#!/usr/bin/env bash
# One-command local mirror of CI's lint gates: formatting, clippy, and
# the determinism linter (see "Determinism lints" in README.md).
#
# Usage: scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# detlint's D006 registry ⟷ goldens cross-check shells out to
# `bench list --json`, so bench must be built first.
echo "==> build bench + detlint"
cargo build --release -p bench -p detlint

echo "==> detlint check"
cargo run --release -p detlint -- check

echo "lint.sh: all gates passed"
