#!/usr/bin/env bash
# Regenerate goldens/quick-seed7/ — the byte-diffed experiment captures CI
# guards — in one auditable command.
#
# The golden set is derived from `bench list`, so it always matches the
# registry exactly: one `<name>.json` per registered experiment (orphans
# from unregistered experiments are removed), plus the concatenated
# stdout of the whole suite as stdout.txt (kept for reference, never
# byte-diffed). Refuses to run with a dirty working tree so a golden
# refresh is always its own reviewable diff.

set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

if [ -n "$(git status --porcelain --untracked-files=no)" ]; then
    echo "error: working tree is dirty — commit or stash first so the" >&2
    echo "golden refresh is an auditable, self-contained diff:" >&2
    git status --short --untracked-files=no >&2
    exit 1
fi

echo "==> building release"
cargo build --release

echo "==> running the full suite (quick, 2 workers, seed 7)"
cargo run --release --bin bench -- all --quick --threads 2 --seed 7 \
    > /tmp/update-goldens-stdout.txt

echo "==> capturing goldens from the registry"
mkdir -p goldens/quick-seed7
rm -f goldens/quick-seed7/*.json
cargo run --release --bin bench -- list | awk '{print $1}' | while read -r name; do
    if [ ! -f "results/$name.json" ]; then
        echo "error: registered experiment \`$name\` produced no results/$name.json" >&2
        exit 1
    fi
    cp "results/$name.json" "goldens/quick-seed7/$name.json"
done
cp /tmp/update-goldens-stdout.txt goldens/quick-seed7/stdout.txt

# The perf trajectory rides along: a full-mode scale run (quick + full
# grid, topping out at 10k nodes × 1M requests — expect several minutes)
# rewrites the committed baseline that CI's soft perf check compares
# against. Skip with BENCH_SKIP_SCALE=1 when only the goldens changed.
if [ "${BENCH_SKIP_SCALE:-0}" != "1" ]; then
    echo "==> refreshing BENCH_scale.json (full-mode scale run)"
    cargo run --release --bin bench -- run scale --seed 7 > /dev/null
    cp results/BENCH_scale.json BENCH_scale.json
fi

echo "==> done; review and commit:"
git status --short goldens/ BENCH_scale.json
