#!/usr/bin/env bash
# Compare a fresh quick-tier `scale` run against the committed perf
# trajectory (BENCH_scale.json at the repo root).
#
#   scripts/check-scale-perf.sh <fresh-BENCH_scale.json> [committed.json]
#
# Two checks, split along the determinism boundary:
#
# - Fingerprints (HARD FAIL): every fresh row whose (nodes, requests)
#   cell also exists in the committed file must carry the identical
#   fingerprint. A mismatch means the simulation *behaves* differently —
#   non-determinism or an unacknowledged semantic change — which the
#   golden diff would also catch, but this names the perf baseline as
#   stale explicitly.
# - Throughput (SOFT WARN): sim_per_wall below 50% of the committed value
#   for the same cell prints a warning. CI machines vary too much for a
#   hard wall-clock gate; the committed trajectory is refreshed by
#   scripts/update-goldens.sh on a developer machine instead.

set -euo pipefail

fresh="${1:?usage: check-scale-perf.sh <fresh.json> [committed.json]}"
committed="${2:-$(git -C "$(dirname "$0")" rev-parse --show-toplevel)/BENCH_scale.json}"

python3 - "$fresh" "$committed" <<'EOF'
import json
import sys

fresh_path, committed_path = sys.argv[1], sys.argv[2]
fresh = json.load(open(fresh_path))
committed = json.load(open(committed_path))
baseline = {(r["nodes"], r["requests"]): r for r in committed}

status = 0
compared = 0
for row in fresh:
    cell = (row["nodes"], row["requests"])
    base = baseline.get(cell)
    if base is None:
        print(f"note: cell {cell} not in committed baseline; skipped")
        continue
    compared += 1
    if row["fingerprint"] != base["fingerprint"]:
        print(
            f"::error::scale cell {cell}: fingerprint {row['fingerprint']} "
            f"!= committed {base['fingerprint']} — non-deterministic or the "
            f"baseline is stale (run scripts/update-goldens.sh)"
        )
        status = 1
        continue
    ratio = row["sim_per_wall"] / max(base["sim_per_wall"], 1e-9)
    verdict = "ok"
    if ratio < 0.5:
        verdict = "SLOW"
        print(
            f"::warning::scale cell {cell}: sim-s/wall-s "
            f"{row['sim_per_wall']:.0f} is {ratio:.0%} of the committed "
            f"{base['sim_per_wall']:.0f} — possible perf regression"
        )
    print(
        f"cell {cell}: fingerprint ok, sim-s/wall-s {row['sim_per_wall']:.0f} "
        f"vs committed {base['sim_per_wall']:.0f} ({ratio:.0%}, {verdict})"
    )

if compared == 0:
    print("::error::no comparable cells between fresh run and committed baseline")
    status = 1
sys.exit(status)
EOF
