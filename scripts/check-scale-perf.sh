#!/usr/bin/env bash
# Compare a fresh quick-tier `scale` run against the committed perf
# trajectory (BENCH_scale.json at the repo root).
#
#   scripts/check-scale-perf.sh <fresh-BENCH_scale.json> [committed.json]
#
# Prints a per-cell delta table (every comparable cell, not just the
# failing ones — small regressions under the warning threshold must be
# visible in CI logs), then applies two checks split along the
# determinism boundary:
#
# - Fingerprints (HARD FAIL): every fresh row whose (nodes, requests)
#   cell also exists in the committed file must carry the identical
#   fingerprint. A mismatch means the simulation *behaves* differently —
#   non-determinism or an unacknowledged semantic change — which the
#   golden diff would also catch, but this names the perf baseline as
#   stale explicitly.
# - Throughput (SOFT WARN): sim_per_wall below 50% of the committed value
#   for the same cell prints a warning. CI machines vary too much for a
#   hard wall-clock gate; the committed trajectory is refreshed by
#   scripts/update-goldens.sh on a developer machine instead.

set -euo pipefail

fresh="${1:?usage: check-scale-perf.sh <fresh.json> [committed.json]}"
committed="${2:-$(git -C "$(dirname "$0")" rev-parse --show-toplevel)/BENCH_scale.json}"

python3 - "$fresh" "$committed" <<'EOF'
import json
import sys

fresh_path, committed_path = sys.argv[1], sys.argv[2]
fresh = json.load(open(fresh_path))
committed = json.load(open(committed_path))
baseline = {(r["nodes"], r["requests"]): r for r in committed}

status = 0
rows = []
skipped = []
for row in fresh:
    cell = (row["nodes"], row["requests"])
    base = baseline.get(cell)
    if base is None:
        skipped.append(cell)
        continue
    got, want = row["sim_per_wall"], base["sim_per_wall"]
    ratio = got / max(want, 1e-9)
    if row["fingerprint"] != base["fingerprint"]:
        verdict = "FINGERPRINT"
        print(
            f"::error::scale cell {cell}: fingerprint {row['fingerprint']} "
            f"!= committed {base['fingerprint']} — non-deterministic or the "
            f"baseline is stale (run scripts/update-goldens.sh)"
        )
        status = 1
    elif ratio < 0.5:
        verdict = "SLOW"
        print(
            f"::warning::scale cell {cell}: sim-s/wall-s {got:.0f} is "
            f"{ratio:.0%} of the committed {want:.0f} — possible perf "
            f"regression"
        )
    else:
        verdict = "ok"
    rows.append(
        (
            f"{cell[0]}x{cell[1]}",
            f"{want:.0f}",
            f"{got:.0f}",
            f"{ratio - 1.0:+.1%}",
            f"{base['peak_rss_mb']:.0f}",
            f"{row['peak_rss_mb']:.0f}",
            verdict,
        )
    )

if rows:
    header = (
        "cell (nodes x reqs)",
        "committed sim/wall",
        "fresh sim/wall",
        "delta",
        "rss0 MB",
        "rss MB",
        "verdict",
    )
    widths = [
        max(len(header[i]), max(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    print(fmt.format(*header))
    print(fmt.format(*("-" * w for w in widths)))
    for r in rows:
        print(fmt.format(*r))
for cell in skipped:
    print(f"note: cell {cell} not in committed baseline; skipped")

if not rows:
    print("::error::no comparable cells between fresh run and committed baseline")
    status = 1
sys.exit(status)
EOF
