//! Capacity planning with the calibrated performance model.
//!
//! Uses `hwmodel` directly — no simulation — to answer the questions an
//! operator asks before deploying: which models fit which hardware under
//! the SLO, at what concurrency, and with how much KV headroom. This is
//! the same math behind Table II and the §IV feasibility study.
//!
//! ```sh
//! cargo run --release --example capacity_planner
//! ```

use hwmodel::{AnalyticPerf, CheckpointTier, HardwareSpec, ModelSpec, PerfOracle};
use workload::request::Slo;

fn main() {
    let perf = AnalyticPerf::new();
    let slo = Slo::paper();
    let hardware = [HardwareSpec::xeon4_amx_32c(), HardwareSpec::a100_80g()];
    let models = [
        ModelSpec::llama3_2_3b(),
        ModelSpec::llama2_7b(),
        ModelSpec::llama2_13b(),
        ModelSpec::codellama_34b(),
    ];
    let ctx = 2048u32;

    println!(
        "capacity plan at {ctx}-token contexts, TPOT SLO {} ms:\n",
        slo.tpot_s * 1e3
    );
    println!(
        "{:<14} {:<16} {:>9} {:>11} {:>12} {:>12}",
        "model", "hardware", "servable", "max batch", "KV room", "cold start"
    );
    for hw in &hardware {
        for m in &models {
            let servable = hw.can_serve(m);
            let (batch, kv_room, load) = if servable {
                let compute = perf.max_batch_under_tpot(m, hw, ctx, 1.0, slo.tpot_s);
                let kv_room = hw.mem_bytes.saturating_sub(m.weights_bytes());
                let mem_bound = (kv_room / (ctx as u64 * m.kv_bytes_per_token())) as u32;
                (
                    compute.min(mem_bound),
                    format!("{:.0} GB", kv_room as f64 / 1e9),
                    // DRAM-cached checkpoint, uncontended — the classic
                    // ServerlessLLM fast-loader cold start.
                    format!("{:.1} s", perf.load_time(m, hw, CheckpointTier::Dram, 1)),
                )
            } else {
                (0, "-".into(), "-".into())
            };
            println!(
                "{:<14} {:<16} {:>9} {:>11} {:>12} {:>12}",
                m.name,
                hw.name,
                if servable { "yes" } else { "no" },
                batch,
                kv_room,
                load
            );
        }
    }

    // TTFT feasibility frontier: longest prompt each pair can absorb.
    println!("\nlongest prompt within the TTFT SLO:");
    for hw in &hardware {
        for m in &models {
            if !hw.can_serve(m) {
                continue;
            }
            let longest = (1..=128)
                .map(|k| k * 256)
                .take_while(|&l| perf.prefill_time(m, hw, l, 1.0) <= slo.ttft(l).as_secs_f64())
                .last()
                .unwrap_or(0);
            println!("  {:<14} on {:<16} ≈ {longest} tokens", m.name, hw.name);
        }
    }
}
