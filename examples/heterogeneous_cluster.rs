//! Heterogeneous-hardware scenario: when do CPUs carry the load?
//!
//! Runs the same 7B workload on three cluster shapes — GPU-only, CPU-only,
//! and mixed — and shows how SLINFER transparently routes requests: CPUs
//! first while they can hold the SLO, GPUs for what remains (§V). Also
//! demonstrates the per-request fallback: long LongBench prompts skip the
//! CPUs entirely because their prefill would blow the TTFT SLO (§IX-I1).
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use cluster::{ClusterSpec, Simulation, WorldConfig};
use hwmodel::{HardwareKind, ModelSpec};
use slinfer::{Slinfer, SlinferConfig};
use workload::serverless::TraceSpec;
use workload::Dataset;

fn run(cluster: ClusterSpec, models: Vec<ModelSpec>, trace: &workload::Trace) {
    let sim = Simulation::new(
        &cluster,
        models,
        WorldConfig::default(),
        Slinfer::new(SlinferConfig::default()),
    );
    let m = sim.run(trace);
    println!(
        "  SLO {:5.1}%  CPU tokens {:8}  GPU tokens {:8}  (CPU nodes {:.1}, GPU nodes {:.1})",
        100.0 * m.slo_rate(),
        m.cpu_decode_tokens,
        m.gpu_decode_tokens,
        m.avg_nodes_used(HardwareKind::CpuAccel),
        m.avg_nodes_used(HardwareKind::Gpu),
    );
}

fn main() {
    let models: Vec<ModelSpec> = (0..16).map(|i| ModelSpec::llama2_7b().replica(i)).collect();
    let trace = TraceSpec::azure_like(16, 3).generate();
    println!(
        "workload: {} conversation requests over 16 7B models",
        trace.len()
    );

    println!("GPU-only (2 × A100):");
    run(ClusterSpec::heterogeneous(0, 2), models.clone(), &trace);

    println!("CPU-only (4 × AMX Xeon):");
    run(ClusterSpec::heterogeneous(4, 0), models.clone(), &trace);

    println!("mixed (2 CPU + 1 GPU):");
    run(ClusterSpec::heterogeneous(2, 1), models.clone(), &trace);

    // Long-context traffic cannot use CPUs: SLINFER must fall back to GPU.
    let lb_models: Vec<ModelSpec> = (0..8)
        .map(|i| ModelSpec::llama3_1_8b().replica(i))
        .collect();
    let lb_trace = TraceSpec::azure_like(8, 3)
        .with_dataset(Dataset::LongBench)
        .with_load_scale(0.3)
        .generate();
    println!(
        "LongBench traffic ({} requests, median ~8K-token prompts) on 2 CPU + 1 GPU:",
        lb_trace.len()
    );
    run(ClusterSpec::heterogeneous(2, 1), lb_models, &lb_trace);
    println!("  (CPU decode tokens ≈ 0: prefills beyond ~8K tokens cannot hold the 8 s TTFT)");
}
