//! Quickstart: serve a small private model zoo with SLINFER.
//!
//! Builds a 2-CPU + 2-GPU cluster, generates a light 30-minute serverless
//! workload over eight Llama-2-7B variants, runs the SLINFER scheduler, and
//! prints the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cluster::{ClusterSpec, Simulation, WorldConfig};
use hwmodel::{HardwareKind, ModelSpec};
use slinfer::{Slinfer, SlinferConfig};
use workload::serverless::TraceSpec;

fn main() {
    // 1. A model zoo: eight private fine-tunes of Llama-2-7B.
    let models: Vec<ModelSpec> = (0..8).map(|i| ModelSpec::llama2_7b().replica(i)).collect();

    // 2. A serverless workload: skewed popularity, bursty arrivals,
    //    conversation-shaped token lengths.
    let trace = TraceSpec::azure_like(8, 42).generate();
    println!(
        "workload: {} requests over {:.0} minutes across {} models",
        trace.len(),
        trace.duration.as_secs_f64() / 60.0,
        trace.n_models
    );

    // 3. A heterogeneous cluster: 2 AMX CPU nodes + 2 A100 GPUs.
    let cluster = ClusterSpec::heterogeneous(2, 2);

    // 4. Run SLINFER with the paper's defaults (25% watermark, 10%
    //    shadow-validation overestimate, CPU-first placement).
    let sim = Simulation::new(
        &cluster,
        models,
        WorldConfig::default(),
        Slinfer::new(SlinferConfig::default()),
    );
    let metrics = sim.run(&trace);

    // 5. Inspect the outcome.
    println!(
        "SLO attainment: {:.1}% ({} of {} requests)",
        100.0 * metrics.slo_rate(),
        metrics.slo_met(),
        metrics.total()
    );
    println!(
        "nodes used (time-weighted): {:.1} CPU, {:.1} GPU",
        metrics.avg_nodes_used(HardwareKind::CpuAccel),
        metrics.avg_nodes_used(HardwareKind::Gpu)
    );
    println!(
        "decode throughput: {:.0} tok/(node·s) on CPU, {:.0} on GPU",
        metrics.decode_speed_per_node(HardwareKind::CpuAccel),
        metrics.decode_speed_per_node(HardwareKind::Gpu)
    );
    println!(
        "cold starts: {}, KV rescales: {}, OOM incidents: {}",
        metrics.cold_starts, metrics.scale_ops, metrics.oom_incidents
    );
    assert_eq!(metrics.oom_incidents, 0, "the orchestrator prevents OOM");
}
