//! Private-model-zoo scenario: the paper's motivating deployment.
//!
//! A cloud tenant hosts 48 private fine-tunes of mixed sizes (3B/7B/13B,
//! skewed toward small models like the HuggingFace popularity data of
//! Fig. 2) on a fixed 4+4 cluster. The example contrasts SLINFER against
//! exclusive allocation (`sllm`) on the *same* workload, showing where the
//! serving-capacity gain comes from: sharing plus CPU serving.
//!
//! ```sh
//! cargo run --release --example private_model_zoo
//! ```

use baselines::sllm::{Sllm, SllmConfig};
use cluster::{ClusterSpec, RunMetrics, Simulation, WorldConfig};
use hwmodel::{HardwareKind, ModelSpec};
use slinfer::{Slinfer, SlinferConfig};
use workload::serverless::TraceSpec;
use workload::Dataset;

fn build_zoo(n: usize) -> Vec<ModelSpec> {
    // 3:2:1 mix — small models dominate private deployments (§III-B).
    let bases = [
        ModelSpec::llama3_2_3b(),
        ModelSpec::llama3_2_3b(),
        ModelSpec::llama3_2_3b(),
        ModelSpec::llama2_7b(),
        ModelSpec::llama2_7b(),
        ModelSpec::llama2_13b(),
    ];
    (0..n).map(|i| bases[i % bases.len()].replica(i)).collect()
}

fn report(label: &str, m: &RunMetrics) {
    println!(
        "{label:10} SLO {:5.1}%  dropped {:4}  CPU nodes {:.1}  GPU nodes {:.1}  cold starts {}",
        100.0 * m.slo_rate(),
        m.dropped,
        m.avg_nodes_used(HardwareKind::CpuAccel),
        m.avg_nodes_used(HardwareKind::Gpu),
        m.cold_starts
    );
}

fn main() {
    let zoo = build_zoo(48);
    let trace = TraceSpec::azure_like(48, 7)
        .with_dataset(Dataset::AzureConv)
        .generate();
    println!(
        "zoo: {} models (3B/7B/13B mix); workload: {} requests / 30 min",
        zoo.len(),
        trace.len()
    );

    // Exclusive GPUs (ServerlessLLM-style).
    let sllm = Simulation::new(
        &ClusterSpec::heterogeneous(4, 4),
        zoo.clone(),
        WorldConfig::default(),
        Sllm::new(SllmConfig::sllm()),
    )
    .run(&trace);
    report("sllm", &sllm);

    // SLINFER: elastic sharing across CPUs and GPUs.
    let slinfer = Simulation::new(
        &ClusterSpec::heterogeneous(4, 4),
        zoo,
        WorldConfig::default(),
        Slinfer::new(SlinferConfig::default()),
    )
    .run(&trace);
    report("SLINFER", &slinfer);

    let gain = 100.0 * (slinfer.slo_met() as f64 / sllm.slo_met().max(1) as f64 - 1.0);
    println!("serving-capacity gain: {gain:+.0}% SLO-met requests on identical hardware");
}
